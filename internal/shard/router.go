package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/index"
	"xrefine/internal/mutate"
	"xrefine/internal/narrow"
	"xrefine/internal/obs"
	"xrefine/internal/refine"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
	"xrefine/internal/xmltree"
)

// Options tunes a Router.
type Options struct {
	// Live opens every replica with its write-ahead log attached, enabling
	// Apply. Read-only routers refuse updates like a frozen engine.
	Live bool
	// Config is the engine configuration shared by the shards and the
	// meta engine (strategy, K, budgets, metrics registry). Nil works.
	Config *core.Config

	// Replicas bounds how many replicas per shard Open attaches from the
	// manifest: 0 opens every replica the directory carries, 1 opens the
	// primary only, R opens min(R, available).
	Replicas int
	// HedgeAfter is the delay after which a shard scan still outstanding
	// on its primary replica is hedged onto the next-best replica; the
	// first scan to finish wins and the loser is cancelled. 0 disables
	// hedging (the single-replica behavior).
	HedgeAfter time.Duration
	// Retries is the number of extra scan attempts a shard gets beyond
	// one per readable replica before the scan fails and the response
	// degrades shard-partial. 0 means the default (1); negative disables
	// retries entirely.
	Retries int
	// RetryBackoff is the base delay between sequential retry rounds,
	// doubling per round. 0 means the default (2ms).
	RetryBackoff time.Duration
	// BreakerThreshold is how many consecutive scan errors open a
	// replica's circuit breaker. 0 means the default (3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker holds the replica out
	// of primary read selection. 0 means the default (3s).
	BreakerCooldown time.Duration
	// Chaos, when non-nil, arms a seeded probabilistic fault injector
	// (error rate and/or latency jitter) on every replica store Open
	// opens — the xserve -chaos soak mode. Ignored by the NewFromStores
	// constructors, whose callers own the stores.
	Chaos *Chaos
}

// Defaults for the zero-valued Options knobs.
const (
	defaultRetries          = 1
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 3 * time.Second
)

// metaState is the router's query-time view, rebuilt whole after every
// committed update and swapped in with one pointer store: the merged
// corpus index, the meta engine ranking against it, and the partition
// ownership map. Queries load the pointer once and run entirely against
// that snapshot.
type metaState struct {
	merged *index.Index
	eng    *core.Engine
	// owners maps a partition ordinal (the second Dewey component) to the
	// shard holding it; rootOwner is the shard owning the highest ordinal
	// — the one whose local root mints the same next-child ordinal the
	// monolithic corpus root would, so root-level inserts route there.
	owners    map[uint32]int
	rootOwner int
}

// routerMetrics are the scatter-gather and replica families, registered on
// the shared registry next to the meta engine's.
type routerMetrics struct {
	fanout     *obs.Gauge
	queries    *obs.Counter
	scans      *obs.CounterVec
	scanErrors *obs.CounterVec
	partial    *obs.Counter
	mergeSecs  *obs.Histogram

	replicaScans  *obs.CounterVec
	replicaErrors *obs.CounterVec
	attemptSecs   *obs.HistogramVec
	hedges        *obs.Counter
	hedgeWins     *obs.Counter
	retries       *obs.Counter
	breakerTrips  *obs.Counter
	quarantines   *obs.Counter
	reconciles    *obs.Counter
}

// Router hosts one corpus across independent engine shards — each shard an
// R-way replica set with its own store, WAL and epoch per replica — and
// serves the whole core.Engine query surface scatter-gather.
// Partition-strategy queries fan a per-shard scan out under one shared
// budget and pruning bound and merge the records back in global document
// order, so responses are byte-identical to a monolithic engine over the
// concatenated corpus no matter which replica serves each scan. The other
// strategies (and ranking, completion, statistics) run on a meta engine
// built over the merged index.
//
// Each shard scan picks the healthiest replica (EWMA latency, circuit
// breaker state); with HedgeAfter set, a scan still outstanding past the
// delay is hedged onto the next replica and the loser is cancelled through
// the context plumbing. Transient faults retry with backoff across the
// replica set before the shard is declared failed. Writes route to every
// replica of the owning shard; a replica that misses a commit is detected
// by epoch mismatch, quarantined from reads, and caught up by replaying
// the missed WAL batches before it rejoins.
type Router struct {
	cfg         core.Config // as passed, before engine defaulting
	topK        int
	parallelism int
	reg         *xmltree.Registry
	mreg        *obs.Registry
	groups      []*replicaGroup
	ownsStores  bool

	hedgeAfter       time.Duration
	retries          int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	// applyMu serializes writers; the meta state swap is the publish. The
	// per-shard catch-up logs are guarded by it too.
	applyMu sync.Mutex
	meta    atomic.Pointer[metaState]
	catchup []*catchupLog

	m routerMetrics
	// flight is the shared registry's event ring: the router records the
	// fan-out lifecycle (fanout, per-replica attempts, hedges, retries,
	// breaker trips, quarantine/reconcile, WAL commits) for every request.
	flight *obs.FlightRecorder
	// Scatter-path response counters Stats folds into the meta engine's
	// (whose own counters only see delegated SLE/stack queries).
	refined  atomic.Uint64
	degraded atomic.Uint64
}

// Open opens the shard directory written by WriteStores /
// WriteReplicatedStores and builds a router over it. Live routers attach
// each replica's WAL (replaying any crash leftovers) and accept updates;
// read-only routers open the stores read-only. The router owns the stores;
// Close releases everything.
func Open(dir string, opts *Options) (*Router, error) {
	if opts == nil {
		opts = &Options{}
	}
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	var stores [][]storage.Backend
	var walPaths [][]string
	var faults [][]*storage.Faults
	closeAll := func() {
		for _, grp := range stores {
			for _, s := range grp {
				s.Close()
			}
		}
	}
	for _, ent := range man.Shards {
		files := []ReplicaFiles{{Store: ent.Store, WAL: ent.WAL, Backend: ent.Backend}}
		files = append(files, ent.Replicas...)
		if opts.Replicas > 0 && len(files) > opts.Replicas {
			files = files[:opts.Replicas]
		}
		var grp []storage.Backend
		var wals []string
		var fs []*storage.Faults
		for _, rf := range files {
			kind, err := storage.ParseKind(rf.Backend)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("shard: manifest: %s: %w", rf.Store, err)
			}
			var f *storage.Faults
			if opts.Chaos != nil {
				f = &storage.Faults{} // attached now, armed after load
			}
			s, err := backends.Open(kind, filepath.Join(dir, rf.Store), &storage.Options{ReadOnly: !opts.Live, Faults: f})
			if err != nil {
				closeAll()
				return nil, err
			}
			grp = append(grp, s)
			wals = append(wals, filepath.Join(dir, rf.WAL))
			fs = append(fs, f)
		}
		stores = append(stores, grp)
		walPaths = append(walPaths, wals)
		faults = append(faults, fs)
	}
	r, err := NewReplicated(stores, walPaths, opts)
	if err != nil {
		closeAll()
		return nil, err
	}
	for i, g := range r.groups {
		for j, rp := range g.reps {
			rp.faults = faults[i][j]
			opts.Chaos.arm(rp.faults, i, j)
		}
	}
	r.ownsStores = true
	return r, nil
}

// NewFromStores builds a single-replica router over already-open shard
// stores (written with WriteStores semantics: disjoint partition subsets
// of one corpus, global Dewey labels, a shared bare container root). With
// opts.Live the i-th shard attaches the i-th WAL path. The caller owns the
// stores unless the router was built through Open.
func NewFromStores(stores []storage.Backend, walPaths []string, opts *Options) (*Router, error) {
	grp := make([][]storage.Backend, len(stores))
	for i, s := range stores {
		grp[i] = []storage.Backend{s}
	}
	var wals [][]string
	if walPaths != nil {
		wals = make([][]string, len(walPaths))
		for i, w := range walPaths {
			wals[i] = []string{w}
		}
	}
	return NewReplicated(grp, wals, opts)
}

// NewReplicated builds a router over already-open replica store groups:
// stores[i][j] is replica j of shard i, every replica of a shard holding
// an identical copy of that shard's subset. With opts.Live, walPaths must
// mirror the store layout. The caller owns the stores unless the router
// was built through Open.
func NewReplicated(stores [][]storage.Backend, walPaths [][]string, opts *Options) (*Router, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(stores) == 0 {
		return nil, errors.New("shard: no shard stores")
	}
	if opts.Live && len(walPaths) != len(stores) {
		return nil, fmt.Errorf("shard: %d store groups but %d wal groups", len(stores), len(walPaths))
	}
	cfg := core.Config{}
	if opts.Config != nil {
		cfg = *opts.Config
	}
	r := &Router{
		cfg:              cfg,
		topK:             cfg.TopK,
		parallelism:      cfg.Parallelism,
		hedgeAfter:       opts.HedgeAfter,
		retries:          opts.Retries,
		retryBackoff:     opts.RetryBackoff,
		breakerThreshold: opts.BreakerThreshold,
		breakerCooldown:  opts.BreakerCooldown,
	}
	if r.topK <= 0 {
		r.topK = 3
	}
	if r.parallelism <= 0 {
		r.parallelism = runtime.GOMAXPROCS(0)
	}
	switch {
	case r.retries == 0:
		r.retries = defaultRetries
	case r.retries < 0:
		r.retries = 0
	}
	if r.retryBackoff <= 0 {
		r.retryBackoff = defaultRetryBackoff
	}
	if r.breakerThreshold <= 0 {
		r.breakerThreshold = defaultBreakerThreshold
	}
	if r.breakerCooldown <= 0 {
		r.breakerCooldown = defaultBreakerCooldown
	}
	r.mreg = cfg.Metrics
	if cfg.DisableMetrics {
		r.mreg = obs.Disabled()
	} else if r.mreg == nil {
		r.mreg = obs.NewRegistry()
	}
	r.reg = xmltree.NewRegistry()
	// Replica engines keep private registries (their metric families would
	// collide name-for-name on a shared one) and walk sequentially —
	// parallelism lives in the cross-shard fan-out, not inside one shard.
	shardCfg := cfg
	shardCfg.Metrics = nil
	shardCfg.DisableMetrics = true
	shardCfg.Parallelism = 1
	shardCfg.CacheSize = 0
	for i, grp := range stores {
		if len(grp) == 0 {
			r.closeShards()
			return nil, fmt.Errorf("shard: shard %d has no replica stores", i)
		}
		if opts.Live && len(walPaths[i]) != len(grp) {
			r.closeShards()
			return nil, fmt.Errorf("shard: shard %d has %d stores but %d wal paths", i, len(grp), len(walPaths[i]))
		}
		g := &replicaGroup{shard: i}
		for j, s := range grp {
			var eng *core.Engine
			var err error
			if opts.Live {
				eng, err = core.OpenLiveShared(s, walPaths[i][j], r.reg, &shardCfg)
			} else {
				eng, err = core.OpenShared(s, r.reg, &shardCfg)
			}
			if err != nil {
				r.closeShards()
				return nil, fmt.Errorf("shard: open shard %d replica %d: %w", i, j, err)
			}
			g.reps = append(g.reps, &replica{shard: i, id: j, eng: eng, store: s})
		}
		r.groups = append(r.groups, g)
		r.catchup = append(r.catchup, &catchupLog{})
	}
	r.m = routerMetrics{
		fanout: r.mreg.Gauge("xrefine_shard_fanout",
			"Worker goroutines the last scatter-gather query fanned out to."),
		queries: r.mreg.Counter("xrefine_shard_queries_total",
			"Queries executed scatter-gather across the shards."),
		scans: r.mreg.CounterVec("xrefine_shard_scans_total",
			"Per-shard partition scans executed.", "shard"),
		scanErrors: r.mreg.CounterVec("xrefine_shard_scan_errors_total",
			"Per-shard scans whose every replica attempt failed and were dropped from the merge.", "shard"),
		partial: r.mreg.Counter("xrefine_shard_partial_total",
			"Responses degraded shard-partial because a shard scan failed."),
		mergeSecs: r.mreg.Histogram("xrefine_shard_merge_seconds",
			"Cross-shard merge latency in seconds.", obs.DefBuckets),
		replicaScans: r.mreg.CounterVec("xrefine_replica_scans_total",
			"Scan attempts dispatched, by shard and replica.", "shard", "replica"),
		replicaErrors: r.mreg.CounterVec("xrefine_replica_errors_total",
			"Scan attempts that failed, by shard and replica.", "shard", "replica"),
		attemptSecs: r.mreg.HistogramVec("xrefine_replica_attempt_seconds",
			"Per-replica scan attempt latency in seconds, by shard.", obs.DefBuckets, "shard"),
		hedges: r.mreg.Counter("xrefine_replica_hedges_total",
			"Hedge scans fired because the primary replica was slow."),
		hedgeWins: r.mreg.Counter("xrefine_replica_hedge_wins_total",
			"Hedge scans that finished before the primary attempt."),
		retries: r.mreg.Counter("xrefine_replica_retries_total",
			"Sequential scan retries after a failed attempt."),
		breakerTrips: r.mreg.Counter("xrefine_replica_breaker_trips_total",
			"Circuit-breaker openings after consecutive replica errors."),
		quarantines: r.mreg.Counter("xrefine_replica_quarantines_total",
			"Replicas quarantined from reads on an epoch mismatch."),
		reconciles: r.mreg.Counter("xrefine_replica_reconciles_total",
			"Quarantined replicas caught up by WAL-batch replay and rejoined."),
	}
	r.mreg.GaugeFunc("xrefine_shard_epoch_sum",
		"Sum of the shard epochs — advances by one per committed batch.",
		func() float64 {
			var sum uint64
			for _, e := range r.ShardEpochs() {
				sum += e
			}
			return float64(sum)
		})
	r.mreg.GaugeFunc("xrefine_replica_quarantined",
		"Replicas currently quarantined from reads (epoch-lagged).",
		func() float64 {
			n := 0
			for _, g := range r.groups {
				for _, rp := range g.reps {
					if rp.quarantined.Load() {
						n++
					}
				}
			}
			return float64(n)
		})
	r.mreg.GaugeFunc("xrefine_replica_breaker_open",
		"Replicas whose circuit breaker is currently open.",
		func() float64 {
			now := time.Now().UnixNano()
			n := 0
			for _, g := range r.groups {
				for _, rp := range g.reps {
					if rp.breakerOpen(now) {
						n++
					}
				}
			}
			return float64(n)
		})
	r.mreg.GaugeFunc("xrefine_replica_epoch_lag_max",
		"Largest epoch lag of any replica behind its group.",
		func() float64 {
			var max uint64
			for _, g := range r.groups {
				top := g.maxEpoch()
				for _, rp := range g.reps {
					if e := rp.eng.Epoch(); top-e > max {
						max = top - e
					}
				}
			}
			return float64(max)
		})
	r.flight = r.mreg.Flight()
	if err := r.rebuild(); err != nil {
		r.closeShards()
		return nil, err
	}
	return r, nil
}

func (r *Router) closeShards() {
	for _, g := range r.groups {
		for _, rp := range g.reps {
			rp.eng.Close()
			if r.ownsStores {
				rp.store.Close()
			}
		}
	}
}

// Close releases every replica's WAL and, when the router opened the shard
// directory itself, the stores.
func (r *Router) Close() error {
	var first error
	for _, g := range r.groups {
		for _, rp := range g.reps {
			if err := rp.eng.Close(); err != nil && first == nil {
				first = err
			}
			if r.ownsStores {
				if err := rp.store.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.groups) }

// Replicas returns the replica count of the widest shard.
func (r *Router) Replicas() int {
	max := 0
	for _, g := range r.groups {
		if len(g.reps) > max {
			max = len(g.reps)
		}
	}
	return max
}

// ShardEpochs returns every shard's current epoch (its primary replica's),
// in shard order — the serving layer surfaces them on /healthz.
func (r *Router) ShardEpochs() []uint64 {
	out := make([]uint64, len(r.groups))
	for i, g := range r.groups {
		out[i] = g.primary().eng.Epoch()
	}
	return out
}

// ResetReplicaHealth forgets every replica's learned health — EWMA
// latency, error streaks, breaker state — so read selection starts cold,
// the state right after a restart or deploy. Quarantine flags are kept:
// they record an epoch fact, not a latency estimate. Benchmarks use this
// to measure hedging against a selector that has not yet learned which
// replica is slow — exactly the queries hedging exists to protect.
func (r *Router) ResetReplicaHealth() {
	for _, g := range r.groups {
		for _, rp := range g.reps {
			rp.ewmaNS.Store(0)
			rp.consecErrs.Store(0)
			rp.breakerUntil.Store(0)
		}
	}
}

// ReplicaTable returns one health row per replica, in shard then replica
// order — the /healthz replica table.
func (r *Router) ReplicaTable() []ReplicaStatus {
	var out []ReplicaStatus
	for _, g := range r.groups {
		out = append(out, g.statuses()...)
	}
	return out
}

// rebuild merges the primary shard indexes into a fresh meta state and
// publishes it. Called at construction and, under applyMu, after every
// commit. Replicas of one shard hold identical content at equal epochs, so
// any non-quarantined replica's index is a valid merge input; the primary
// is used for determinism.
func (r *Router) rebuild() error {
	parts := make([]*index.Index, len(r.groups))
	for i, g := range r.groups {
		parts[i] = g.primary().eng.Index()
	}
	merged, err := index.Merge(parts)
	if err != nil {
		return err
	}
	metaCfg := r.cfg
	metaCfg.Metrics = r.mreg
	// Rebuilds replace the whole engine but its generation restarts at 0,
	// so a response cache would serve pre-update answers under reused
	// keys. The scatter path never consults it anyway.
	metaCfg.CacheSize = 0
	ms := &metaState{
		merged: merged,
		eng:    core.NewFromIndex(merged, &metaCfg),
		owners: make(map[uint32]int),
	}
	var maxOrd uint32
	seen := false
	for i, p := range parts {
		for _, pid := range p.PartitionRoots() {
			ord := pid[1]
			ms.owners[ord] = i
			if !seen || ord > maxOrd {
				maxOrd, ms.rootOwner, seen = ord, i, true
			}
		}
	}
	r.meta.Store(ms)
	return nil
}

// state loads the current meta snapshot.
func (r *Router) state() *metaState { return r.meta.Load() }

// QueryTermsCtx answers a pre-tokenized query — the router half of the
// core.Engine entry point of the same name. The partition strategy runs
// scatter-gather: one budget and one pruning bound shared across per-shard
// scans on a bounded worker pool, records merged in global document order,
// ranking on the meta engine. SLE and stack-refine walk the merged lists
// directly on the meta engine — their admission logic is not partitioned,
// so a per-shard split cannot reproduce it.
//
// A shard whose every replica attempt failed degrades the response to the
// surviving shards' results, tagged shard-partial, instead of failing the
// query; hard cancellation still aborts, and when every shard fails the
// first error is returned.
func (r *Router) QueryTermsCtx(ctx context.Context, terms []string, strategy core.Strategy, k, parallelism int) (*core.Response, error) {
	ms := r.state()
	if strategy != core.StrategyPartition {
		return ms.eng.QueryTermsCtx(ctx, terms, strategy, k, parallelism)
	}
	if len(terms) == 0 {
		return nil, errors.New("core: query has no keywords")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		k = r.topK
	}
	r.m.queries.Inc()
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	root := obs.SpanFromContext(ctx)
	psp := root.StartChild("prepare")
	in, cands, err := ms.eng.Prepare(terms)
	psp.End()
	if err != nil {
		return nil, err
	}
	in.Budget = refine.NewBudget(ctx, r.cfg.PostingBudget)
	fan := parallelism
	if fan <= 0 {
		fan = r.parallelism
	}
	if fan > len(r.groups) {
		fan = len(r.groups)
	}
	if fan < 1 {
		fan = 1
	}
	r.m.fanout.Set(int64(fan))
	r.flight.Record(obs.Event{Trace: obs.TraceIDFromContext(ctx), Kind: obs.EvFanout,
		Shard: -1, Replica: -1, N: int64(fan)})
	var ssp *obs.Span
	if root != nil {
		ssp = root.StartChild("refine:partition")
		in.Trace = ssp
	}
	resp := &core.Response{Terms: terms, SearchFor: cands, Rules: in.Rules.Rules()}
	out, err := r.scatterGather(in, k, fan, ssp)
	if ssp != nil {
		if out != nil {
			ssp.SetInt("partitions", int64(out.Partitions))
			ssp.SetInt("slca_calls", int64(out.SLCACalls))
			ssp.SetInt("workers", int64(out.Workers))
			if out.Degraded {
				ssp.SetStr("degraded", out.DegradedReason)
			}
		}
		ssp.End()
	}
	if err != nil {
		return nil, err
	}
	ms.eng.NoteOutcome(out)
	resp, err = ms.eng.FinishTopK(ctx, resp, terms, out, k)
	if err != nil {
		return nil, err
	}
	if resp.NeedRefine {
		r.refined.Add(1)
	}
	if resp.Degraded {
		r.degraded.Add(1)
		r.flight.Record(obs.Event{Trace: obs.TraceIDFromContext(ctx), Kind: obs.EvBudgetExpiry,
			Shard: -1, Replica: -1, Note: resp.DegradedReason})
	}
	return resp, nil
}

// scatterGather runs the shard scans on a bounded worker pool and merges
// them. in is the merged-corpus input; each shard job resolves against its
// replica set (hedging, failover, retry) before contributing a scan. ssp,
// when non-nil, collects one "shard-i" child span per attempt and a
// "merge" child.
func (r *Router) scatterGather(in refine.Input, k, fan int, ssp *obs.Span) (*refine.TopKOutcome, error) {
	// The scan keyword set is fixed here, against the merged index, so
	// every shard walks identical keyword columns even when a term is
	// absent from its slice of the corpus.
	ks := in.ScanKeywords()
	if len(ks) == 0 {
		return &refine.TopKOutcome{Workers: 1}, nil
	}
	bound := refine.NewPruneBound()
	scans := make([]*refine.ShardScan, len(r.groups))
	errs := make([]error, len(r.groups))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < fan; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				scans[i], errs[i] = r.scanShardReplicated(in, k, ks, bound, i, ssp)
				r.m.scans.With(strconv.Itoa(i)).Inc()
				if errs[i] != nil {
					r.m.scanErrors.With(strconv.Itoa(i)).Inc()
				}
			}
		}()
	}
	for i := range r.groups {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Classify failures: a hard cancellation aborts the query; a shard
	// whose every replica attempt failed (storage fault) is dropped and
	// the response degrades to the surviving shards, unless none survived.
	partial := false
	var firstErr error
	ok := 0
	for i, err := range errs {
		if err == nil {
			ok++
			continue
		}
		if in.Budget.Err() != nil || errors.Is(err, context.Canceled) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		partial = true
		scans[i] = nil
	}
	if ok == 0 {
		return nil, firstErr
	}
	msp := ssp.StartChild("merge")
	start := time.Now()
	out, err := refine.MergeShardScans(in, k, scans)
	r.m.mergeSecs.Observe(time.Since(start).Seconds())
	msp.End()
	if err != nil {
		return nil, err
	}
	out.Workers = fan
	if partial {
		out.Degraded = true
		out.DegradedReason = refine.DegradedShardPartial
		r.m.partial.Inc()
	}
	return out, nil
}

// attemptResult is one replica scan attempt's outcome.
type attemptResult struct {
	rp    *replica
	scan  *refine.ShardScan
	err   error
	dur   time.Duration
	hedge bool
}

// scanShardReplicated resolves one shard's scan against its replica set:
// the scan starts on the best replica by health order; if HedgeAfter
// passes before it finishes, a hedge fires on the next replica and the
// first success wins (the loser is cancelled through its attempt context,
// which shares the query's posting budget but not its lifetime). A failed
// attempt fails over to the next replica with doubling backoff, up to one
// attempt per readable replica plus the configured retries, before the
// shard is declared failed.
func (r *Router) scanShardReplicated(in refine.Input, k int, ks []string, bound *refine.PruneBound, si int, ssp *obs.Span) (*refine.ShardScan, error) {
	g := r.groups[si]
	order := g.readOrder()
	if len(order) == 0 {
		return nil, fmt.Errorf("shard: shard %d has no readable replica", si)
	}
	maxAttempts := len(order) + r.retries
	baseCtx := in.Budget.Context()
	ri := obs.ReqInfoFromContext(baseCtx)
	tid := ri.TraceID()
	resCh := make(chan attemptResult, maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		// Cancel every attempt context on exit: losers stop promptly, and
		// the winner's scan no longer consults its context (the merge
		// replay runs on the query-level budget).
		for _, c := range cancels {
			c()
		}
	}()
	launched := 0
	launch := func(hedge bool) {
		rp := order[launched%len(order)]
		launched++
		actx, cancel := context.WithCancel(baseCtx)
		cancels = append(cancels, cancel)
		r.m.replicaScans.With(strconv.Itoa(si), strconv.Itoa(rp.id)).Inc()
		// Record the start event before spawning the goroutine: on a
		// loaded (or single-P) scheduler the attempt goroutine may not
		// run until after a fast sibling has already won, and the ring
		// must still show every launched attempt by the time the query
		// returns — consumers pair starts with terminal events.
		start := time.Now()
		r.flight.Record(obs.Event{Trace: tid, Kind: obs.EvAttemptStart,
			Shard: si, Replica: rp.id, Hedge: hedge})
		go func() {
			sin := in
			sin.Index = rp.eng.Index()
			sin.Parallelism = 1
			sin.Budget = in.Budget.WithContext(actx)
			var sp *obs.Span
			if ssp != nil {
				sp = ssp.StartChild("shard-" + strconv.Itoa(si))
				sp.SetInt("replica", int64(rp.id))
				if hedge {
					sp.SetInt("hedge", 1)
				}
				sin.Trace = sp
			}
			scan, err := refine.ScanShard(sin, k, ks, bound)
			if sp != nil {
				if scan != nil {
					sp.SetInt("partitions", int64(scan.Partitions()))
				}
				if err != nil {
					sp.SetStr("error", err.Error())
				}
				sp.End()
			}
			dur := time.Since(start)
			ev := obs.Event{Trace: tid, Kind: obs.EvAttemptEnd,
				Shard: si, Replica: rp.id, Hedge: hedge, DurNS: int64(dur)}
			switch {
			case err == nil:
			case errors.Is(err, context.Canceled):
				// A cancelled attempt is a hedge/failover loser, not a fault.
				ev.Kind = obs.EvAttemptCancel
			default:
				ev.Note = "error"
			}
			r.flight.Record(ev)
			h := r.m.attemptSecs.With(strconv.Itoa(si))
			if ri.IsSampled() && tid != 0 {
				h.ObserveExemplar(dur.Seconds(), tid, time.Now())
			} else {
				h.Observe(dur.Seconds())
			}
			resCh <- attemptResult{rp: rp, scan: scan, err: err, dur: dur, hedge: hedge}
		}()
	}
	launch(false)
	outstanding := 1
	var hedgeC <-chan time.Time
	if r.hedgeAfter > 0 && len(order) > 1 {
		t := time.NewTimer(r.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	backoff := r.retryBackoff
	var firstErr error
	for {
		select {
		case res := <-resCh:
			outstanding--
			if res.err == nil {
				res.rp.noteSuccess(res.dur)
				ri.NoteServe(si, res.rp.id, res.hedge, res.dur)
				if res.hedge {
					r.m.hedgeWins.Inc()
					r.flight.Record(obs.Event{Trace: tid, Kind: obs.EvHedgeWin,
						Shard: si, Replica: res.rp.id, Hedge: true, DurNS: int64(res.dur)})
				}
				return res.scan, nil
			}
			r.m.replicaErrors.With(strconv.Itoa(si), strconv.Itoa(res.rp.id)).Inc()
			if res.rp.noteError(r.breakerThreshold, r.breakerCooldown) {
				r.m.breakerTrips.Inc()
				r.flight.Record(obs.Event{Trace: tid, Kind: obs.EvBreakerOpen,
					Shard: si, Replica: res.rp.id})
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if err := in.Budget.Err(); err != nil {
				return nil, err // the whole query was cancelled
			}
			if outstanding > 0 {
				continue // a hedge is still racing; wait for it
			}
			if launched >= maxAttempts {
				return nil, firstErr
			}
			r.m.retries.Inc()
			r.flight.Record(obs.Event{Trace: tid, Kind: obs.EvRetry, Shard: si, Replica: -1})
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-baseCtx.Done():
					t.Stop()
					if err := in.Budget.Err(); err != nil {
						return nil, err
					}
					return nil, firstErr
				}
				backoff *= 2
			}
			launch(false)
			outstanding++
		case <-hedgeC:
			hedgeC = nil
			if outstanding > 0 && launched < maxAttempts {
				r.m.hedges.Inc()
				r.flight.Record(obs.Event{Trace: tid, Kind: obs.EvHedgeFire, Shard: si, Replica: -1})
				launch(true)
				outstanding++
			}
		}
	}
}

// Complete delegates search-as-you-type to the merged vocabulary.
func (r *Router) Complete(partial string, k int) []string {
	return r.state().eng.Complete(partial, k)
}

// Narrow is unavailable on a router: narrowing verifies suggestions
// against the source document, and the merged meta engine has none.
func (r *Router) Narrow(q string, opts *narrow.Options) (*narrow.Outcome, error) {
	return nil, narrow.ErrNeedsDocument
}

// Index returns the merged corpus index of the current snapshot.
func (r *Router) Index() *index.Index { return r.state().merged }

// Metrics returns the shared registry: meta engine, scatter-gather and
// (through the serving layer) HTTP families in one catalog.
func (r *Router) Metrics() *obs.Registry { return r.mreg }

// Snippet renders a match by routing to the shard owning its partition.
func (r *Router) Snippet(m refine.Match, max int) (string, bool) {
	if len(m.ID) < 2 {
		return "", false
	}
	i, ok := r.state().owners[m.ID[1]]
	if !ok {
		return "", false
	}
	return r.groups[i].primary().eng.Snippet(m, max)
}

// Stats merges the meta engine's counters (which see delegated SLE and
// stack queries) with the router's scatter-path counters into one
// core.EngineStats snapshot.
func (r *Router) Stats() core.EngineStats {
	st := r.state().eng.Stats()
	st.Queries += r.m.queries.Value()
	st.Refined += r.refined.Load()
	st.Degraded += r.degraded.Load()
	st.Parallelism = r.parallelism
	return st
}

// UpdateStats sums the shards' live-update state over the primary
// replicas: Epoch is the epoch sum (one commit anywhere advances it by
// one), sizes and counts accumulate, Live reports whether any shard
// accepts updates.
func (r *Router) UpdateStats() core.UpdateStats {
	var out core.UpdateStats
	for _, g := range r.groups {
		u := g.primary().eng.UpdateStats()
		out.Live = out.Live || u.Live
		out.Epoch += u.Epoch
		out.WALSizeBytes += u.WALSizeBytes
		out.AppliedBatches += u.AppliedBatches
		out.AppliedOps += u.AppliedOps
		out.ReplayedBatches += u.ReplayedBatches
		out.PinnedQueries += u.PinnedQueries
	}
	return out
}

// ownerOf resolves the shard responsible for one op. Inserts route by the
// parent's partition — a root-level insert creates a partition and goes to
// the shard owning the highest ordinal, whose local root mints the same
// next-child label the monolithic root would. Deletes route by target;
// deleting the corpus root is refused.
func (r *Router) ownerOf(ms *metaState, op mutate.Op) (int, error) {
	var id []uint32
	switch op.Kind {
	case mutate.OpInsert:
		id = op.Parent
	case mutate.OpDelete:
		id = op.Target
	default:
		return 0, fmt.Errorf("shard: unknown op kind %d", op.Kind)
	}
	if len(id) == 0 {
		return 0, errors.New("shard: op has no target label")
	}
	if len(id) == 1 {
		if op.Kind == mutate.OpDelete {
			return 0, errors.New("shard: refusing to delete the corpus root")
		}
		return ms.rootOwner, nil
	}
	owner, ok := ms.owners[id[1]]
	if !ok {
		return 0, fmt.Errorf("shard: no shard owns partition %d", id[1])
	}
	return owner, nil
}

// SplitBatch groups a batch's ops by owning shard, preserving op order
// within each group — the client-side remedy when Apply rejects a batch
// as spanning shards (each group commits as one epoch on its shard).
func (r *Router) SplitBatch(b *mutate.Batch) (map[int]*mutate.Batch, error) {
	ms := r.state()
	out := make(map[int]*mutate.Batch)
	for _, op := range b.Ops {
		owner, err := r.ownerOf(ms, op)
		if err != nil {
			return nil, err
		}
		g := out[owner]
		if g == nil {
			g = &mutate.Batch{}
			out[owner] = g
		}
		g.Ops = append(g.Ops, op)
	}
	return out, nil
}

// Apply routes one update batch to every replica of the shard owning its
// partitions, then rebuilds the merged meta state. A batch is one atomic
// epoch commit, so all its ops must land on one shard; batches spanning
// shards are rejected whole — SplitBatch turns one into per-shard batches.
//
// Replica divergence is handled by epoch reconciliation: a replica whose
// commit failed while a sibling's succeeded is left epoch-lagged, detected
// by the mismatch, quarantined from reads, and caught up by replaying the
// missed batches from the shard's catch-up log (each replay is a WAL-backed
// epoch commit on the replica) before it rejoins. A batch that fails on
// every replica commits nowhere, advances no epoch, and is returned as the
// caller's error. The returned Epoch is the shard epoch sum, the
// router-wide generation /healthz and callers observe.
func (r *Router) Apply(b *mutate.Batch) (*core.ApplyResult, error) {
	if b == nil || len(b.Ops) == 0 {
		return nil, errors.New("shard: empty batch")
	}
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	ms := r.state()
	owner := -1
	for _, op := range b.Ops {
		o, err := r.ownerOf(ms, op)
		if err != nil {
			return nil, err
		}
		if owner == -1 {
			owner = o
		} else if o != owner {
			return nil, fmt.Errorf("shard: batch spans shards %d and %d; split it per shard (one epoch commit each)", owner, o)
		}
	}
	g := r.groups[owner]
	// Give previously-quarantined replicas a chance to rejoin first, so a
	// healed store takes this batch on the normal path instead of lagging
	// one epoch further behind.
	r.reconcileLocked(owner)
	var res *core.ApplyResult
	var firstErr error
	for _, rp := range g.reps {
		if rp.quarantined.Load() {
			continue // still lagging; the catch-up log covers this batch
		}
		rres, err := rp.eng.Apply(b)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res == nil {
			res = rres
		}
	}
	if res == nil {
		// No replica committed: the batch was rejected (bad target,
		// malformed fragment) or every store failed. Either way no epoch
		// moved, so the group is still consistent and nothing quarantines.
		return nil, firstErr
	}
	r.catchup[owner].add(res.Epoch, b)
	r.flight.Record(obs.Event{Kind: obs.EvWALCommit, Shard: owner, Replica: -1, N: int64(res.Epoch)})
	// Epoch reconciliation, detection half: any replica now behind the
	// group missed this commit. Quarantine it from reads until replay
	// catches it up.
	max := g.maxEpoch()
	for _, rp := range g.reps {
		if rp.eng.Epoch() < max && !rp.quarantined.Load() {
			rp.quarantined.Store(true)
			r.m.quarantines.Inc()
			r.flight.Record(obs.Event{Kind: obs.EvQuarantine, Shard: owner, Replica: rp.id,
				N: int64(max - rp.eng.Epoch()), Note: "epoch-lag"})
		}
	}
	// A transient write fault may already have passed: try to catch the
	// straggler up immediately so a one-shot fault costs no read capacity.
	r.reconcileLocked(owner)
	if err := r.rebuild(); err != nil {
		return nil, fmt.Errorf("shard: update committed on shard %d but meta rebuild failed: %w", owner, err)
	}
	var sum uint64
	for _, gg := range r.groups {
		sum += gg.primary().eng.Epoch()
	}
	res.Epoch = sum
	return res, nil
}

// Reconcile attempts to catch up every quarantined replica by WAL-batch
// replay and reports how many rejoined. The serving layer may call it on a
// health probe; Apply calls it automatically around each commit.
func (r *Router) Reconcile() int {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	before := r.m.reconciles.Value()
	for i := range r.groups {
		r.reconcileLocked(i)
	}
	return int(r.m.reconciles.Value() - before)
}

// reconcileLocked replays missed batches into shard si's quarantined
// replicas. A replica rejoins when the catch-up log covers every epoch it
// missed and each replay commits; one that lags beyond the log's retention
// window, or whose store still faults, stays quarantined. Caller holds
// applyMu.
func (r *Router) reconcileLocked(si int) {
	g := r.groups[si]
	target := g.maxEpoch()
	for _, rp := range g.reps {
		if !rp.quarantined.Load() {
			continue
		}
		e := rp.eng.Epoch()
		if e > target {
			continue // ahead of the group? leave it out — should not happen
		}
		if e < target {
			entries := r.catchup[si].from(e, target)
			if entries == nil {
				continue // log no longer reaches back far enough
			}
			ok := true
			for _, ent := range entries {
				if _, err := rp.eng.Apply(ent.batch); err != nil {
					ok = false
					break
				}
			}
			if !ok || rp.eng.Epoch() != target {
				continue
			}
		}
		rp.quarantined.Store(false)
		rp.consecErrs.Store(0)
		rp.breakerUntil.Store(0)
		r.m.reconciles.Inc()
		r.flight.Record(obs.Event{Kind: obs.EvReconcile, Shard: si, Replica: rp.id, N: int64(target)})
	}
}
