package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/index"
	"xrefine/internal/kvstore"
	"xrefine/internal/mutate"
	"xrefine/internal/narrow"
	"xrefine/internal/obs"
	"xrefine/internal/refine"
	"xrefine/internal/xmltree"
)

// Options tunes a Router.
type Options struct {
	// Live opens every shard with its write-ahead log attached, enabling
	// Apply. Read-only routers refuse updates like a frozen engine.
	Live bool
	// Config is the engine configuration shared by the shards and the
	// meta engine (strategy, K, budgets, metrics registry). Nil works.
	Config *core.Config
}

// metaState is the router's query-time view, rebuilt whole after every
// committed update and swapped in with one pointer store: the merged
// corpus index, the meta engine ranking against it, and the partition
// ownership map. Queries load the pointer once and run entirely against
// that snapshot.
type metaState struct {
	merged *index.Index
	eng    *core.Engine
	// owners maps a partition ordinal (the second Dewey component) to the
	// shard holding it; rootOwner is the shard owning the highest ordinal
	// — the one whose local root mints the same next-child ordinal the
	// monolithic corpus root would, so root-level inserts route there.
	owners    map[uint32]int
	rootOwner int
}

// routerMetrics are the scatter-gather families, registered on the shared
// registry next to the meta engine's.
type routerMetrics struct {
	fanout     *obs.Gauge
	queries    *obs.Counter
	scans      *obs.CounterVec
	scanErrors *obs.CounterVec
	partial    *obs.Counter
	mergeSecs  *obs.Histogram
}

// Router hosts one corpus across independent engine shards and serves the
// whole core.Engine query surface scatter-gather. Partition-strategy
// queries fan a per-shard scan out under one shared budget and pruning
// bound and merge the records back in global document order, so responses
// are byte-identical to a monolithic engine over the concatenated corpus.
// The other strategies (and ranking, completion, statistics) run on a meta
// engine built over the merged index.
type Router struct {
	cfg         core.Config // as passed, before engine defaulting
	topK        int
	parallelism int
	reg         *xmltree.Registry
	mreg        *obs.Registry
	shards      []*core.Engine
	stores      []*kvstore.Store
	ownsStores  bool

	// applyMu serializes writers; the meta state swap is the publish.
	applyMu sync.Mutex
	meta    atomic.Pointer[metaState]

	m routerMetrics
	// Scatter-path response counters Stats folds into the meta engine's
	// (whose own counters only see delegated SLE/stack queries).
	refined  atomic.Uint64
	degraded atomic.Uint64
}

// Open opens the shard directory written by WriteStores and builds a
// router over it. Live routers attach each shard's WAL (replaying any
// crash leftovers) and accept updates; read-only routers open the stores
// read-only. The router owns the stores; Close releases everything.
func Open(dir string, opts *Options) (*Router, error) {
	if opts == nil {
		opts = &Options{}
	}
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	stores := make([]*kvstore.Store, 0, len(man.Shards))
	walPaths := make([]string, 0, len(man.Shards))
	closeAll := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	for _, ent := range man.Shards {
		s, err := kvstore.Open(filepath.Join(dir, ent.Store), &kvstore.Options{ReadOnly: !opts.Live})
		if err != nil {
			closeAll()
			return nil, err
		}
		stores = append(stores, s)
		walPaths = append(walPaths, filepath.Join(dir, ent.WAL))
	}
	r, err := NewFromStores(stores, walPaths, opts)
	if err != nil {
		closeAll()
		return nil, err
	}
	r.ownsStores = true
	return r, nil
}

// NewFromStores builds a router over already-open shard stores (written
// with WriteStores semantics: disjoint partition subsets of one corpus,
// global Dewey labels, a shared bare container root). With opts.Live the
// i-th shard attaches the i-th WAL path. The caller owns the stores
// unless the router was built through Open.
func NewFromStores(stores []*kvstore.Store, walPaths []string, opts *Options) (*Router, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(stores) == 0 {
		return nil, errors.New("shard: no shard stores")
	}
	if opts.Live && len(walPaths) != len(stores) {
		return nil, fmt.Errorf("shard: %d stores but %d wal paths", len(stores), len(walPaths))
	}
	cfg := core.Config{}
	if opts.Config != nil {
		cfg = *opts.Config
	}
	r := &Router{cfg: cfg, topK: cfg.TopK, parallelism: cfg.Parallelism, stores: stores}
	if r.topK <= 0 {
		r.topK = 3
	}
	if r.parallelism <= 0 {
		r.parallelism = runtime.GOMAXPROCS(0)
	}
	r.mreg = cfg.Metrics
	if cfg.DisableMetrics {
		r.mreg = obs.Disabled()
	} else if r.mreg == nil {
		r.mreg = obs.NewRegistry()
	}
	r.reg = xmltree.NewRegistry()
	// Shards keep private registries (their metric families would collide
	// name-for-name on a shared one) and walk sequentially — parallelism
	// lives in the cross-shard fan-out, not inside one shard.
	shardCfg := cfg
	shardCfg.Metrics = nil
	shardCfg.DisableMetrics = true
	shardCfg.Parallelism = 1
	shardCfg.CacheSize = 0
	for i, s := range stores {
		var eng *core.Engine
		var err error
		if opts.Live {
			eng, err = core.OpenLiveShared(s, walPaths[i], r.reg, &shardCfg)
		} else {
			eng, err = core.OpenShared(s, r.reg, &shardCfg)
		}
		if err != nil {
			r.closeShards()
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		r.shards = append(r.shards, eng)
	}
	r.m = routerMetrics{
		fanout: r.mreg.Gauge("xrefine_shard_fanout",
			"Worker goroutines the last scatter-gather query fanned out to."),
		queries: r.mreg.Counter("xrefine_shard_queries_total",
			"Queries executed scatter-gather across the shards."),
		scans: r.mreg.CounterVec("xrefine_shard_scans_total",
			"Per-shard partition scans executed.", "shard"),
		scanErrors: r.mreg.CounterVec("xrefine_shard_scan_errors_total",
			"Per-shard scans that failed and were dropped from the merge.", "shard"),
		partial: r.mreg.Counter("xrefine_shard_partial_total",
			"Responses degraded shard-partial because a shard scan failed."),
		mergeSecs: r.mreg.Histogram("xrefine_shard_merge_seconds",
			"Cross-shard merge latency in seconds.", obs.DefBuckets),
	}
	r.mreg.GaugeFunc("xrefine_shard_epoch_sum",
		"Sum of the shard epochs — advances by one per committed batch.",
		func() float64 {
			var sum uint64
			for _, e := range r.ShardEpochs() {
				sum += e
			}
			return float64(sum)
		})
	if err := r.rebuild(); err != nil {
		r.closeShards()
		return nil, err
	}
	return r, nil
}

func (r *Router) closeShards() {
	for _, e := range r.shards {
		e.Close()
	}
	if r.ownsStores {
		for _, s := range r.stores {
			s.Close()
		}
	}
}

// Close releases the shard WALs and, when the router opened the shard
// directory itself, the stores.
func (r *Router) Close() error {
	var first error
	for _, e := range r.shards {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	if r.ownsStores {
		for _, s := range r.stores {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.shards) }

// ShardEpochs returns every shard's current epoch, in shard order — the
// serving layer surfaces them on /healthz.
func (r *Router) ShardEpochs() []uint64 {
	out := make([]uint64, len(r.shards))
	for i, e := range r.shards {
		out[i] = e.Epoch()
	}
	return out
}

// rebuild merges the shard indexes into a fresh meta state and publishes
// it. Called at construction and, under applyMu, after every commit.
func (r *Router) rebuild() error {
	parts := make([]*index.Index, len(r.shards))
	for i, e := range r.shards {
		parts[i] = e.Index()
	}
	merged, err := index.Merge(parts)
	if err != nil {
		return err
	}
	metaCfg := r.cfg
	metaCfg.Metrics = r.mreg
	// Rebuilds replace the whole engine but its generation restarts at 0,
	// so a response cache would serve pre-update answers under reused
	// keys. The scatter path never consults it anyway.
	metaCfg.CacheSize = 0
	ms := &metaState{
		merged: merged,
		eng:    core.NewFromIndex(merged, &metaCfg),
		owners: make(map[uint32]int),
	}
	var maxOrd uint32
	seen := false
	for i, p := range parts {
		for _, pid := range p.PartitionRoots() {
			ord := pid[1]
			ms.owners[ord] = i
			if !seen || ord > maxOrd {
				maxOrd, ms.rootOwner, seen = ord, i, true
			}
		}
	}
	r.meta.Store(ms)
	return nil
}

// state loads the current meta snapshot.
func (r *Router) state() *metaState { return r.meta.Load() }

// QueryTermsCtx answers a pre-tokenized query — the router half of the
// core.Engine entry point of the same name. The partition strategy runs
// scatter-gather: one budget and one pruning bound shared across per-shard
// scans on a bounded worker pool, records merged in global document order,
// ranking on the meta engine. SLE and stack-refine walk the merged lists
// directly on the meta engine — their admission logic is not partitioned,
// so a per-shard split cannot reproduce it.
//
// A failed or fault-injected shard degrades the response to the surviving
// shards' results, tagged shard-partial, instead of failing the query;
// hard cancellation still aborts, and when every shard fails the first
// error is returned.
func (r *Router) QueryTermsCtx(ctx context.Context, terms []string, strategy core.Strategy, k, parallelism int) (*core.Response, error) {
	ms := r.state()
	if strategy != core.StrategyPartition {
		return ms.eng.QueryTermsCtx(ctx, terms, strategy, k, parallelism)
	}
	if len(terms) == 0 {
		return nil, errors.New("core: query has no keywords")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		k = r.topK
	}
	r.m.queries.Inc()
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	root := obs.SpanFromContext(ctx)
	psp := root.StartChild("prepare")
	in, cands, err := ms.eng.Prepare(terms)
	psp.End()
	if err != nil {
		return nil, err
	}
	in.Budget = refine.NewBudget(ctx, r.cfg.PostingBudget)
	fan := parallelism
	if fan <= 0 {
		fan = r.parallelism
	}
	if fan > len(r.shards) {
		fan = len(r.shards)
	}
	if fan < 1 {
		fan = 1
	}
	r.m.fanout.Set(int64(fan))
	var ssp *obs.Span
	if root != nil {
		ssp = root.StartChild("refine:partition")
		in.Trace = ssp
	}
	resp := &core.Response{Terms: terms, SearchFor: cands, Rules: in.Rules.Rules()}
	out, err := r.scatterGather(in, k, fan, ssp)
	if ssp != nil {
		if out != nil {
			ssp.SetInt("partitions", int64(out.Partitions))
			ssp.SetInt("slca_calls", int64(out.SLCACalls))
			ssp.SetInt("workers", int64(out.Workers))
			if out.Degraded {
				ssp.SetStr("degraded", out.DegradedReason)
			}
		}
		ssp.End()
	}
	if err != nil {
		return nil, err
	}
	ms.eng.NoteOutcome(out)
	resp, err = ms.eng.FinishTopK(ctx, resp, terms, out, k)
	if err != nil {
		return nil, err
	}
	if resp.NeedRefine {
		r.refined.Add(1)
	}
	if resp.Degraded {
		r.degraded.Add(1)
	}
	return resp, nil
}

// scatterGather runs the shard scans on a bounded worker pool and merges
// them. in is the merged-corpus input; each worker swaps in the shard's
// own index before scanning. ssp, when non-nil, collects one "shard-i"
// child span per scan and a "merge" child.
func (r *Router) scatterGather(in refine.Input, k, fan int, ssp *obs.Span) (*refine.TopKOutcome, error) {
	// The scan keyword set is fixed here, against the merged index, so
	// every shard walks identical keyword columns even when a term is
	// absent from its slice of the corpus.
	ks := in.ScanKeywords()
	if len(ks) == 0 {
		return &refine.TopKOutcome{Workers: 1}, nil
	}
	bound := refine.NewPruneBound()
	scans := make([]*refine.ShardScan, len(r.shards))
	errs := make([]error, len(r.shards))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < fan; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sin := in
				sin.Index = r.shards[i].Index()
				sin.Parallelism = 1
				var sp *obs.Span
				if ssp != nil {
					sp = ssp.StartChild("shard-" + strconv.Itoa(i))
					sin.Trace = sp
				}
				scans[i], errs[i] = refine.ScanShard(sin, k, ks, bound)
				if sp != nil {
					if scans[i] != nil {
						sp.SetInt("partitions", int64(scans[i].Partitions()))
					}
					if errs[i] != nil {
						sp.SetStr("error", errs[i].Error())
					}
					sp.End()
				}
				r.m.scans.With(strconv.Itoa(i)).Inc()
				if errs[i] != nil {
					r.m.scanErrors.With(strconv.Itoa(i)).Inc()
				}
			}
		}()
	}
	for i := range r.shards {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Classify failures: a hard cancellation aborts the query; a shard
	// whose scan failed on its own (storage fault) is dropped and the
	// response degrades to the surviving shards, unless none survived.
	partial := false
	var firstErr error
	ok := 0
	for i, err := range errs {
		if err == nil {
			ok++
			continue
		}
		if in.Budget.Err() != nil || errors.Is(err, context.Canceled) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		partial = true
		scans[i] = nil
	}
	if ok == 0 {
		return nil, firstErr
	}
	msp := ssp.StartChild("merge")
	start := time.Now()
	out, err := refine.MergeShardScans(in, k, scans)
	r.m.mergeSecs.Observe(time.Since(start).Seconds())
	msp.End()
	if err != nil {
		return nil, err
	}
	out.Workers = fan
	if partial {
		out.Degraded = true
		out.DegradedReason = refine.DegradedShardPartial
		r.m.partial.Inc()
	}
	return out, nil
}

// Complete delegates search-as-you-type to the merged vocabulary.
func (r *Router) Complete(partial string, k int) []string {
	return r.state().eng.Complete(partial, k)
}

// Narrow is unavailable on a router: narrowing verifies suggestions
// against the source document, and the merged meta engine has none.
func (r *Router) Narrow(q string, opts *narrow.Options) (*narrow.Outcome, error) {
	return nil, narrow.ErrNeedsDocument
}

// Index returns the merged corpus index of the current snapshot.
func (r *Router) Index() *index.Index { return r.state().merged }

// Metrics returns the shared registry: meta engine, scatter-gather and
// (through the serving layer) HTTP families in one catalog.
func (r *Router) Metrics() *obs.Registry { return r.mreg }

// Snippet renders a match by routing to the shard owning its partition.
func (r *Router) Snippet(m refine.Match, max int) (string, bool) {
	if len(m.ID) < 2 {
		return "", false
	}
	i, ok := r.state().owners[m.ID[1]]
	if !ok {
		return "", false
	}
	return r.shards[i].Snippet(m, max)
}

// Stats merges the meta engine's counters (which see delegated SLE and
// stack queries) with the router's scatter-path counters into one
// core.EngineStats snapshot.
func (r *Router) Stats() core.EngineStats {
	st := r.state().eng.Stats()
	st.Queries += r.m.queries.Value()
	st.Refined += r.refined.Load()
	st.Degraded += r.degraded.Load()
	st.Parallelism = r.parallelism
	return st
}

// UpdateStats sums the shards' live-update state: Epoch is the epoch sum
// (one commit anywhere advances it by one), sizes and counts accumulate,
// Live reports whether any shard accepts updates.
func (r *Router) UpdateStats() core.UpdateStats {
	var out core.UpdateStats
	for _, e := range r.shards {
		u := e.UpdateStats()
		out.Live = out.Live || u.Live
		out.Epoch += u.Epoch
		out.WALSizeBytes += u.WALSizeBytes
		out.AppliedBatches += u.AppliedBatches
		out.AppliedOps += u.AppliedOps
		out.ReplayedBatches += u.ReplayedBatches
		out.PinnedQueries += u.PinnedQueries
	}
	return out
}

// ownerOf resolves the shard responsible for one op. Inserts route by the
// parent's partition — a root-level insert creates a partition and goes to
// the shard owning the highest ordinal, whose local root mints the same
// next-child label the monolithic root would. Deletes route by target;
// deleting the corpus root is refused.
func (r *Router) ownerOf(ms *metaState, op mutate.Op) (int, error) {
	var id []uint32
	switch op.Kind {
	case mutate.OpInsert:
		id = op.Parent
	case mutate.OpDelete:
		id = op.Target
	default:
		return 0, fmt.Errorf("shard: unknown op kind %d", op.Kind)
	}
	if len(id) == 0 {
		return 0, errors.New("shard: op has no target label")
	}
	if len(id) == 1 {
		if op.Kind == mutate.OpDelete {
			return 0, errors.New("shard: refusing to delete the corpus root")
		}
		return ms.rootOwner, nil
	}
	owner, ok := ms.owners[id[1]]
	if !ok {
		return 0, fmt.Errorf("shard: no shard owns partition %d", id[1])
	}
	return owner, nil
}

// SplitBatch groups a batch's ops by owning shard, preserving op order
// within each group — the client-side remedy when Apply rejects a batch
// as spanning shards (each group commits as one epoch on its shard).
func (r *Router) SplitBatch(b *mutate.Batch) (map[int]*mutate.Batch, error) {
	ms := r.state()
	out := make(map[int]*mutate.Batch)
	for _, op := range b.Ops {
		owner, err := r.ownerOf(ms, op)
		if err != nil {
			return nil, err
		}
		g := out[owner]
		if g == nil {
			g = &mutate.Batch{}
			out[owner] = g
		}
		g.Ops = append(g.Ops, op)
	}
	return out, nil
}

// Apply routes one update batch to the shard owning its partitions and
// commits it there, then rebuilds the merged meta state. A batch is one
// atomic epoch commit, so all its ops must land on one shard; batches
// spanning shards are rejected whole — SplitBatch turns one into
// per-shard batches. The returned Epoch is the shard epoch sum, the
// router-wide generation /healthz and callers observe.
func (r *Router) Apply(b *mutate.Batch) (*core.ApplyResult, error) {
	if b == nil || len(b.Ops) == 0 {
		return nil, errors.New("shard: empty batch")
	}
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	ms := r.state()
	owner := -1
	for _, op := range b.Ops {
		o, err := r.ownerOf(ms, op)
		if err != nil {
			return nil, err
		}
		if owner == -1 {
			owner = o
		} else if o != owner {
			return nil, fmt.Errorf("shard: batch spans shards %d and %d; split it per shard (one epoch commit each)", owner, o)
		}
	}
	res, err := r.shards[owner].Apply(b)
	if err != nil {
		return nil, err
	}
	if err := r.rebuild(); err != nil {
		return nil, fmt.Errorf("shard: update committed on shard %d but meta rebuild failed: %w", owner, err)
	}
	var sum uint64
	for _, e := range r.shards {
		sum += e.Epoch()
	}
	res.Epoch = sum
	return res, nil
}
