package shard

import (
	"path/filepath"
	"testing"

	"xrefine/internal/kvstore"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
)

// newTestStore builds one shard-test store on the engine the
// XREFINE_BACKEND matrix variable selects: an in-memory B+tree by default
// (fast, no disk), a log-structured store under a test temp dir when the
// backend matrix drives the suite against the log engine. f, when
// non-nil, attaches the fault injector to whichever engine is built, so
// the fault-matrix tests exercise both IO paths.
func newTestStore(t *testing.T, f *storage.Faults) storage.Backend {
	t.Helper()
	if storage.DefaultKind() == storage.KindLog {
		s, err := backends.Open(storage.KindLog,
			filepath.Join(t.TempDir(), "store.logdb"), &storage.Options{Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return kvstore.NewMemWithFaults(f)
}
