// Package shard hosts a corpus across N independent engine shards — one
// store, WAL and epoch world each — and serves queries scatter-gather with
// results byte-identical to a monolithic engine over the concatenated
// corpus. The corpus is one collection document; its partitions (root
// children) are split across shard sub-documents that keep their global
// Dewey labels and share one type registry, so per-shard scans are exact
// restrictions of the monolithic walk and merge back deterministically.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"xrefine/internal/core"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// Split modes: how partitions are assigned to shards.
const (
	// ModeRange assigns contiguous partition blocks — shard i gets the
	// i-th slice of the document-order partition sequence.
	ModeRange = "range"
	// ModeHash assigns each partition by FNV-1a of its ordinal — spreads
	// skewed corpora at the cost of range locality.
	ModeHash = "hash"
)

// ParseMode validates a split-mode flag value.
func ParseMode(s string) (string, error) {
	switch s {
	case ModeRange, ModeHash:
		return s, nil
	}
	return "", fmt.Errorf("shard: unknown split mode %q (want %s or %s)", s, ModeRange, ModeHash)
}

// ManifestName is the file naming a shard directory's layout.
const ManifestName = "manifest.json"

// Manifest describes a shard directory: the split mode it was created
// with and the store/WAL file of every shard, in shard order.
type Manifest struct {
	Version int             `json:"version"`
	Mode    string          `json:"mode"`
	Shards  []ManifestEntry `json:"shards"`
}

// ManifestEntry names one shard's files, relative to the directory. Store
// and WAL are the primary replica; Replicas lists the additional copies a
// replicated directory carries (absent for R=1 directories, which keeps
// version-1 manifests readable both ways). Backend names the primary
// replica's storage engine; absent means btree, so pre-backend manifests
// keep opening unchanged.
type ManifestEntry struct {
	Store    string         `json:"store"`
	WAL      string         `json:"wal"`
	Backend  string         `json:"backend,omitempty"`
	Replicas []ReplicaFiles `json:"replicas,omitempty"`
}

// ReplicaFiles names one additional replica's store and WAL, relative to
// the directory. Backend follows the same absent-means-btree rule as
// ManifestEntry — replicas of one shard may in principle mix engines,
// since every replica is its own store/WAL/epoch world.
type ReplicaFiles struct {
	Store   string `json:"store"`
	WAL     string `json:"wal"`
	Backend string `json:"backend,omitempty"`
}

// ReadManifest loads a shard directory's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	if m.Version != 1 || len(m.Shards) == 0 {
		return nil, fmt.Errorf("shard: manifest: unsupported version %d with %d shards", m.Version, len(m.Shards))
	}
	return &m, nil
}

// SplitDocument splits a corpus document into n shard sub-documents by the
// given mode. Every sub-document shares the corpus registry and keeps
// global Dewey labels (xmltree.Document.Subset); shards may come out empty
// when the corpus has fewer partitions than shards. The corpus root must
// be a bare container — carrying direct text on the root would replicate
// its postings into every shard, which the merge corrections do not undo.
func SplitDocument(doc *xmltree.Document, n int, mode string) ([]*xmltree.Document, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: split into %d shards", n)
	}
	if len(tokenize.Text(doc.Root.Text)) > 0 {
		return nil, fmt.Errorf("shard: corpus root carries direct text; sharding requires a bare container root")
	}
	parts := doc.Partitions()
	ords := make([][]uint32, n)
	switch mode {
	case ModeRange:
		for i := 0; i < n; i++ {
			for _, p := range parts[len(parts)*i/n : len(parts)*(i+1)/n] {
				ords[i] = append(ords[i], p.Ord())
			}
		}
	case ModeHash:
		for _, p := range parts {
			var be [4]byte
			binary.BigEndian.PutUint32(be[:], p.Ord())
			h := fnv.New32a()
			h.Write(be[:])
			ords[h.Sum32()%uint32(n)] = append(ords[h.Sum32()%uint32(n)], p.Ord())
		}
	default:
		return nil, fmt.Errorf("shard: unknown split mode %q", mode)
	}
	docs := make([]*xmltree.Document, n)
	for i := range ords {
		sub, err := doc.Subset(ords[i])
		if err != nil {
			return nil, err
		}
		docs[i] = sub
	}
	return docs, nil
}

// WriteStores splits a corpus document into n shards and writes a shard
// directory: shard-<i>.kv index stores (each carrying its sub-document,
// so shards serve snippets and accept live updates) plus the manifest.
// The directory is created if missing. The engine is storage.DefaultKind
// (btree unless the XREFINE_BACKEND matrix override is set).
func WriteStores(doc *xmltree.Document, dir string, n int, mode string) (*Manifest, error) {
	return WriteReplicatedStoresBackend(doc, dir, n, mode, 1, storage.DefaultKind())
}

// WriteReplicatedStores is WriteStores with R copies of every shard: each
// shard's sub-document is saved into replicas identical stores
// (shard-<i>.kv plus shard-<i>.r<j>.kv), each with its own WAL path, so a
// router can open an R-way replica set where every replica holds its own
// store, WAL and epoch world.
func WriteReplicatedStores(doc *xmltree.Document, dir string, n int, mode string, replicas int) (*Manifest, error) {
	return WriteReplicatedStoresBackend(doc, dir, n, mode, replicas, storage.DefaultKind())
}

// storeName names one replica's store file (btree) or directory (log).
func storeName(shard, replica int, kind storage.Kind) string {
	ext := ".kv"
	if kind == storage.KindLog {
		ext = ".logdb"
	}
	if replica == 0 {
		return fmt.Sprintf("shard-%d%s", shard, ext)
	}
	return fmt.Sprintf("shard-%d.r%d%s", shard, replica, ext)
}

// WriteReplicatedStoresBackend is WriteReplicatedStores with an explicit
// storage engine. B+tree replicas are single files (shard-<i>.kv); log
// replicas are segment directories (shard-<i>.logdb). The manifest records
// the engine per replica so Open needs no flag to reopen the directory.
func WriteReplicatedStoresBackend(doc *xmltree.Document, dir string, n int, mode string, replicas int, kind storage.Kind) (*Manifest, error) {
	if replicas < 1 {
		replicas = 1
	}
	docs, err := SplitDocument(doc, n, mode)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &Manifest{Version: 1, Mode: mode}
	for i, sub := range docs {
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		ent := ManifestEntry{
			Store:   storeName(i, 0, kind),
			WAL:     fmt.Sprintf("shard-%d.wal", i),
			Backend: string(kind),
		}
		for j := 1; j < replicas; j++ {
			ent.Replicas = append(ent.Replicas, ReplicaFiles{
				Store:   storeName(i, j, kind),
				WAL:     fmt.Sprintf("shard-%d.r%d.wal", i, j),
				Backend: string(kind),
			})
		}
		names := append([]string{ent.Store}, make([]string, 0, len(ent.Replicas))...)
		for _, rf := range ent.Replicas {
			names = append(names, rf.Store)
		}
		for _, name := range names {
			store, err := backends.Open(kind, filepath.Join(dir, name), nil)
			if err != nil {
				return nil, err
			}
			err = eng.SaveIndexWithDocument(store)
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("shard: write %s: %w", name, err)
			}
		}
		man.Shards = append(man.Shards, ent)
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(raw, '\n'), 0o644); err != nil {
		return nil, err
	}
	return man, nil
}
