package shard

import (
	"context"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/kvstore"
	"xrefine/internal/obs"
)

// collectShardSpans walks a span tree and returns every span whose name
// starts with "shard-", recording the nesting depth relative to the
// partition span so the test can prove losers are siblings of winners.
func collectShardSpans(d *obs.SpanData, depth int, out *[]*obs.SpanData, depths *[]int) {
	if d == nil {
		return
	}
	if len(d.Name) >= 6 && d.Name[:6] == "shard-" {
		*out = append(*out, d)
		*depths = append(*depths, depth)
	}
	for _, c := range d.Children {
		collectShardSpans(c, depth+1, out, depths)
	}
}

// TestHedgedLoserTracePropagation pins the flight-recorder contract for
// hedged fan-out: the hedge fire, the hedge win, and the loser's
// cancellation all carry the request's trace ID, and the loser's span is
// a sibling of the winner under the partition span — never nested inside
// the winner's subtree. Runs under -race in CI: the loser finishes
// asynchronously after the query returns, so the test polls the event
// ring for its terminal event before snapshotting the span tree.
func TestHedgedLoserTracePropagation(t *testing.T) {
	faults := [][]*kvstore.Faults{{{}, nil}}
	r := memReplicatedRouter(t, 32, 5, 1, 2, &Options{HedgeAfter: 50 * time.Microsecond}, faults)
	// Arm after construction so only query-time reads pay the latency.
	faults[0][0].ReadLatency = 3 * time.Millisecond
	r.groups[0].reps[0].store.DropCaches()

	terms := []string{"database", "query"}
	deadline := time.Now().Add(10 * time.Second)
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) {
			t.Fatal("no query produced a hedge win against a 3ms replica with a 50µs hedge delay")
		}
		ri := obs.NewReqInfo()
		ri.Sampled = true
		ctx := obs.WithReqInfo(context.Background(), ri)
		ctx, root := obs.NewTrace(ctx, "query")

		if _, err := r.QueryTermsCtx(ctx, terms, core.StrategyPartition, 3, 2); err != nil {
			t.Fatalf("query %d: %v", attempt, err)
		}

		// The loser unwinds after the winner returns; wait until every
		// launched attempt for this trace has recorded a terminal event
		// (its span is Ended before the event is recorded, so the tree
		// is quiescent once the counts match).
		evs := waitAttemptsSettled(t, r, ri.Trace)

		var fires, wins, cancels int
		winnerReplica, loserReplica := -1, -1
		for _, e := range evs {
			if e.Trace != ri.Trace {
				t.Fatalf("event %+v leaked into trace %s's event set", e, ri.Trace)
			}
			switch e.Kind {
			case obs.EvHedgeFire:
				fires++
			case obs.EvHedgeWin:
				wins++
				winnerReplica = e.Replica
			case obs.EvAttemptCancel:
				cancels++
				loserReplica = e.Replica
			}
		}
		if wins == 0 {
			// Primary beat the hedge this round (scheduler noise, or the
			// read order already demoted the slow replica). Retry.
			root.End()
			root.Release()
			continue
		}
		if fires == 0 {
			t.Fatal("hedge win recorded without a hedge-fire event")
		}
		if cancels == 0 {
			t.Fatalf("hedge won on replica %d but the loser recorded no attempt-cancel; events: %+v",
				winnerReplica, evs)
		}
		if loserReplica == winnerReplica {
			t.Fatalf("loser and winner both report replica %d", winnerReplica)
		}

		root.End()
		data := root.Data()
		root.Release()

		var partition *obs.SpanData
		for _, c := range data.Children {
			if c.Name == "refine:partition" {
				partition = c
			}
		}
		if partition == nil {
			t.Fatalf("sampled trace has no refine:partition span; tree: %+v", data)
		}
		var shardSpans []*obs.SpanData
		var depths []int
		collectShardSpans(partition, 0, &shardSpans, &depths)
		if len(shardSpans) != 2 {
			t.Fatalf("want 2 shard-0 attempt spans (winner+loser), got %d", len(shardSpans))
		}
		sawLoser := false
		for i, sp := range shardSpans {
			if depths[i] != 1 {
				t.Errorf("span %q at depth %d under refine:partition; attempts must be"+
					" siblings, never nested inside the winner", sp.Name, depths[i])
			}
			rep, _ := sp.Attrs["replica"].(int64)
			if int(rep) == loserReplica {
				sawLoser = true
				if _, ok := sp.Attrs["error"]; !ok {
					t.Errorf("loser span (replica %d) has no error attr: %+v", loserReplica, sp.Attrs)
				}
			}
		}
		if !sawLoser {
			t.Errorf("no span for cancelled replica %d in the tree", loserReplica)
		}
		return
	}
}

// waitAttemptsSettled polls the router's event ring until every
// attempt-start recorded for trace id has a matching terminal event
// (attempt-end or attempt-cancel), then returns the trace's events.
func waitAttemptsSettled(t *testing.T, r *Router, id obs.TraceID) []obs.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := r.flight.Events(obs.EventFilter{Trace: id})
		starts, terms := 0, 0
		for _, e := range evs {
			switch e.Kind {
			case obs.EvAttemptStart:
				starts++
			case obs.EvAttemptEnd, obs.EvAttemptCancel:
				terms++
			}
		}
		if starts > 0 && terms >= starts {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("attempts never settled for trace %s: %d starts, %d terminal; events: %+v",
				id, starts, terms, evs)
		}
		time.Sleep(time.Millisecond)
	}
}
