package shard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/kvstore"
	"xrefine/internal/mutate"
	"xrefine/internal/refine"
	"xrefine/internal/server"
	"xrefine/internal/storage"
)

// The tests here extend the differential suite to replicated serving: a
// router whose shards are R-way replica sets must stay byte-identical to
// the monolith no matter which replica serves each scan — with hedging on
// or off, under slow, flaky, dead and epoch-lagged replicas — and must
// fail over rather than degrade whenever any replica of a shard survives.

// memReplicatedRouter splits a generated corpus across n shards of rs
// in-memory replica stores each and routers them. faults, when non-nil, is
// indexed faults[shard][replica]; nil entries leave that store unfaulted.
// With opts.Live each replica gets its own WAL file under a test temp dir.
func memReplicatedRouter(t *testing.T, authors int, seed int64, n, rs int, opts *Options, faults [][]*kvstore.Faults) *Router {
	t.Helper()
	doc := corpusDoc(t, authors, seed)
	subs, err := SplitDocument(doc, n, ModeRange)
	if err != nil {
		t.Fatal(err)
	}
	if opts == nil {
		opts = &Options{}
	}
	stores := make([][]storage.Backend, n)
	var walPaths [][]string
	if opts.Live {
		walPaths = make([][]string, n)
	}
	walDir := t.TempDir()
	for i, sub := range subs {
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		for j := 0; j < rs; j++ {
			var f *kvstore.Faults
			if faults != nil && faults[i] != nil {
				f = faults[i][j]
			}
			s := newTestStore(t, f)
			if err := eng.SaveIndexWithDocument(s); err != nil {
				t.Fatal(err)
			}
			stores[i] = append(stores[i], s)
			if opts.Live {
				walPaths[i] = append(walPaths[i], filepath.Join(walDir, fmt.Sprintf("s%d-r%d.wal", i, j)))
			}
		}
	}
	r, err := NewReplicated(stores, walPaths, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.Close()
		for _, grp := range stores {
			for _, s := range grp {
				s.Close()
			}
		}
	})
	return r
}

// TestReplicaByteIdentity is the replicated conformance claim: for every
// replica count and with hedging off or aggressive, scatter-gather output
// stays byte-identical to the monolith — whichever replica wins a race
// serves the same bytes.
func TestReplicaByteIdentity(t *testing.T) {
	doc := corpusDoc(t, 32, 11)
	mono := server.New(core.NewFromDocument(doc, nil))
	for _, rs := range []int{1, 2, 3} {
		for _, hedge := range []time.Duration{0, 50 * time.Microsecond} {
			r := memReplicatedRouter(t, 32, 11, 2, rs, &Options{HedgeAfter: hedge}, nil)
			srv := server.NewFromBackend(r, server.Config{})
			for _, q := range diffQueries {
				want := fetchSearch(t, mono, q, "partition", 1, 3)
				for _, parallel := range []int{1, 2} {
					got := fetchSearch(t, srv, q, "partition", parallel, 3)
					if got != want {
						t.Errorf("replicas=%d hedge=%v parallel=%d q=%q diverged:\n got: %s\nwant: %s",
							rs, hedge, parallel, q, got, want)
					}
				}
			}
		}
	}
}

// TestReplicaFaultMatrix drives the router through the replica fault
// profiles: a slow replica (hedged around), a flaky replica (retried
// over), a dead replica (failed over, breaker opened) and a fully dead
// shard (degraded shard-partial, never a lie).
func TestReplicaFaultMatrix(t *testing.T) {
	doc := corpusDoc(t, 32, 5)
	mono := server.New(core.NewFromDocument(doc, nil))
	want := fetchSearch(t, mono, "database query", "partition", 1, 3)

	t.Run("slow-replica-hedged", func(t *testing.T) {
		faults := [][]*kvstore.Faults{{{}, nil}, {nil, nil}}
		r := memReplicatedRouter(t, 32, 5, 2, 2, &Options{HedgeAfter: 100 * time.Microsecond}, faults)
		srv := server.NewFromBackend(r, server.Config{})
		// Arm after construction so only query-time reads pay the latency.
		faults[0][0].ReadLatency = 2 * time.Millisecond
		r.groups[0].reps[0].store.DropCaches()
		for i := 0; i < 3; i++ {
			if got := fetchSearch(t, srv, "database query", "partition", 2, 3); got != want {
				t.Fatalf("slow-replica query %d diverged:\n got: %s\nwant: %s", i, got, want)
			}
		}
		if r.m.hedges.Value() == 0 {
			t.Error("no hedge fired against a 2ms/page replica with a 100µs hedge delay")
		}
		if got := r.m.partial.Value(); got != 0 {
			t.Errorf("slow replica degraded %d responses; hedging should have absorbed it", got)
		}
	})

	t.Run("flaky-replica-retried", func(t *testing.T) {
		faults := [][]*kvstore.Faults{{{}, nil}, {nil, nil}}
		r := memReplicatedRouter(t, 32, 5, 2, 2, nil, faults)
		srv := server.NewFromBackend(r, server.Config{})
		faults[0][0].Seed(99)
		faults[0][0].SetErrorRate(0.3)
		r.groups[0].reps[0].store.DropCaches()
		for i := 0; i < 8; i++ {
			if got := fetchSearch(t, srv, "database query", "partition", 2, 3); got != want {
				t.Fatalf("flaky-replica query %d diverged:\n got: %s\nwant: %s", i, got, want)
			}
		}
		if got := r.m.partial.Value(); got != 0 {
			t.Errorf("flaky replica degraded %d responses; failover should have absorbed it", got)
		}
	})

	t.Run("dead-replica-failover", func(t *testing.T) {
		faults := [][]*kvstore.Faults{{{}, nil}, {nil, nil}}
		r := memReplicatedRouter(t, 32, 5, 2, 2, nil, faults)
		srv := server.NewFromBackend(r, server.Config{})
		faults[0][0].FailReads(1)
		r.groups[0].reps[0].store.DropCaches()
		for i := 0; i < 5; i++ {
			if got := fetchSearch(t, srv, "database query", "partition", 2, 3); got != want {
				t.Fatalf("dead-replica query %d diverged:\n got: %s\nwant: %s", i, got, want)
			}
		}
		if got := r.m.partial.Value(); got != 0 {
			t.Errorf("dead replica with a live sibling degraded %d responses, want 0", got)
		}
		if r.m.replicaErrors.Sum() == 0 {
			t.Error("dead replica recorded no attempt errors; the failpoint never fired")
		}
		// Dead long enough for the error streak: the breaker opens and the
		// health table says so.
		if r.m.breakerTrips.Value() == 0 {
			t.Error("breaker never tripped after repeated replica failures")
		}
		found := false
		for _, row := range r.ReplicaTable() {
			if row.Shard == 0 && row.Replica == 0 && row.State == StateBreakerOpen {
				found = true
			}
		}
		if !found {
			t.Errorf("replica table missing breaker-open row: %+v", r.ReplicaTable())
		}
	})

	t.Run("all-replicas-dead", func(t *testing.T) {
		faults := [][]*kvstore.Faults{{{}, {}}, {nil, nil}}
		r := memReplicatedRouter(t, 32, 5, 2, 2, nil, faults)
		for j, rp := range r.groups[0].reps {
			rp.store.DropCaches()
			faults[0][j].FailReads(1)
		}
		resp, err := r.QueryTermsCtx(nil, []string{"database", "query"}, core.StrategyPartition, 3, 2)
		if err != nil {
			t.Fatalf("query with one fully dead shard: %v", err)
		}
		if !resp.Degraded || resp.DegradedReason != refine.DegradedShardPartial {
			t.Fatalf("degraded=%v reason=%q, want shard-partial", resp.Degraded, resp.DegradedReason)
		}
		if got := r.m.partial.Value(); got != 1 {
			t.Errorf("xrefine_shard_partial_total = %d, want 1", got)
		}
		if got := r.m.scanErrors.Sum(); got != 1 {
			t.Errorf("xrefine_shard_scan_errors_total = %d, want 1 (job-granular)", got)
		}
		// Healing every replica heals the shard.
		faults[0][0].Clear()
		faults[0][1].Clear()
		resp2, err := r.QueryTermsCtx(nil, []string{"database", "query"}, core.StrategyPartition, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if resp2.Degraded {
			t.Errorf("recovered query still degraded: %q", resp2.DegradedReason)
		}
	})
}

// TestReplicaEpochReconcile is the routed-write half: a write fault on one
// replica leaves it epoch-lagged; the router quarantines it from reads
// (answers stay byte-identical to the monolith), keeps accepting writes on
// the surviving replica, and once the store heals catches the straggler up
// by WAL-batch replay and rejoins it.
func TestReplicaEpochReconcile(t *testing.T) {
	doc := corpusDoc(t, 24, 9)
	faults := [][]*kvstore.Faults{{nil, {}}, {nil, nil}}
	r := memReplicatedRouter(t, 24, 9, 2, 2, &Options{Live: true}, faults)
	srv := server.NewFromBackend(r, server.Config{})
	mono := core.NewFromDocument(doc, nil)
	monoSrv := server.New(mono)

	parts := doc.Partitions()
	frag := "<paper><title>replica reconcile probe</title></paper>"
	apply := func(i int) {
		t.Helper()
		b := &mutate.Batch{Ops: []mutate.Op{{Kind: mutate.OpInsert, Parent: parts[0].ID, XML: frag}}}
		if _, err := mono.Apply(b); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Apply(b); err != nil {
			t.Fatalf("routed apply %d: %v", i, err)
		}
	}

	// Break replica 1 of shard 0 for writes, then commit twice: both land
	// on replica 0 only, replica 1 falls two epochs behind.
	faults[0][1].FailWrites(1)
	apply(1)
	apply(2)

	if got := r.m.quarantines.Value(); got != 1 {
		t.Errorf("quarantines = %d, want 1 (quarantined once, stays quarantined)", got)
	}
	var lagged *core.ReplicaStatus
	for _, row := range r.ReplicaTable() {
		if row.Shard == 0 && row.Replica == 1 {
			row := row
			lagged = &row
		}
	}
	if lagged == nil || lagged.State != StateQuarantined || lagged.EpochLag != 2 {
		t.Fatalf("shard 0 replica 1 = %+v, want quarantined with epoch lag 2", lagged)
	}

	// Reads while quarantined: byte-identical to the post-update monolith —
	// the lagged replica serves nothing.
	for _, q := range diffQueries[:2] {
		want := fetchSearch(t, monoSrv, q, "partition", 1, 3)
		if got := fetchSearch(t, srv, q, "partition", 2, 3); got != want {
			t.Fatalf("query %q diverged while a replica lagged:\n got: %s\nwant: %s", q, got, want)
		}
	}

	// Heal the store; reconciliation replays the two missed batches through
	// the replica's own WAL-logged Apply and rejoins it.
	faults[0][1].Clear()
	if n := r.Reconcile(); n != 1 {
		t.Fatalf("Reconcile rejoined %d replicas, want 1", n)
	}
	for _, row := range r.ReplicaTable() {
		if row.Shard == 0 && row.Replica == 1 {
			if row.State != StateHealthy || row.EpochLag != 0 {
				t.Fatalf("rejoined replica = %+v, want healthy at lag 0", row)
			}
		}
	}

	// The next write lands on both replicas again and epochs stay equal.
	apply(3)
	for _, rp := range r.groups[0].reps {
		if e := rp.eng.Epoch(); e != 3 {
			t.Errorf("shard 0 replica %d epoch = %d, want 3", rp.id, e)
		}
	}
	for _, q := range diffQueries[:2] {
		want := fetchSearch(t, monoSrv, q, "partition", 1, 3)
		if got := fetchSearch(t, srv, q, "partition", 2, 3); got != want {
			t.Fatalf("query %q diverged after rejoin:\n got: %s\nwant: %s", q, got, want)
		}
	}
}

// TestReplicaWriteRejectionNoQuarantine: a batch that no replica accepts
// (bad target) is the caller's error — it advances no epoch and must not
// quarantine anything.
func TestReplicaWriteRejectionNoQuarantine(t *testing.T) {
	r := memReplicatedRouter(t, 24, 9, 2, 2, &Options{Live: true}, nil)
	bad := &mutate.Batch{Ops: []mutate.Op{{Kind: mutate.OpInsert, Parent: []uint32{0, 2}, XML: "<unclosed"}}}
	if _, err := r.Apply(bad); err == nil {
		t.Fatal("malformed batch accepted")
	}
	for _, row := range r.ReplicaTable() {
		if row.State != StateHealthy || row.EpochLag != 0 {
			t.Errorf("replica %+v unhealthy after a rejected batch", row)
		}
	}
	if got := r.m.quarantines.Value(); got != 0 {
		t.Errorf("quarantines = %d after a rejected batch, want 0", got)
	}
}

// TestReplicaHedgeCancelPromptness stresses the hedge race under the race
// detector: many queries against a slow primary with an aggressive hedge
// delay must neither leak loser goroutines nor corrupt shared state, and
// every response must match the monolith.
func TestReplicaHedgeCancelPromptness(t *testing.T) {
	doc := corpusDoc(t, 24, 3)
	mono := server.New(core.NewFromDocument(doc, nil))
	want := fetchSearch(t, mono, "database query", "partition", 1, 3)
	faults := [][]*kvstore.Faults{{{}, nil}, {{}, nil}}
	r := memReplicatedRouter(t, 24, 3, 2, 2, &Options{HedgeAfter: 50 * time.Microsecond}, faults)
	srv := server.NewFromBackend(r, server.Config{})
	for i := range faults {
		faults[i][0].ReadLatency = time.Millisecond
		r.groups[i].reps[0].store.DropCaches()
	}
	base := runtime.NumGoroutine()
	done := make(chan string, 8)
	const clients, rounds = 4, 8
	for c := 0; c < clients; c++ {
		go func() {
			for i := 0; i < rounds; i++ {
				done <- fetchSearchQuiet(srv, "database query", 2, 3)
			}
		}()
	}
	for i := 0; i < clients*rounds; i++ {
		if got := <-done; got != want {
			t.Fatalf("hedged query diverged:\n got: %s\nwant: %s", got, want)
		}
	}
	// Losers must unwind promptly once cancelled: the goroutine count
	// settles back near the pre-stress baseline.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+clients+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d baseline — hedge losers leaked",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.m.hedges.Value() == 0 {
		t.Error("stress run fired no hedges; the race was never exercised")
	}
}

// TestReplicatedStoreLayout checks the on-disk replicated format round
// trip: WriteReplicatedStores emits R stores and WAL names per shard, Open
// honors the Replicas bound, and a live replicated directory serves and
// accepts writes.
func TestReplicatedStoreLayout(t *testing.T) {
	doc := corpusDoc(t, 24, 7)
	dir := t.TempDir()
	man, err := WriteReplicatedStores(doc, dir, 2, ModeRange, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 2 {
		t.Fatalf("manifest shards = %d, want 2", len(man.Shards))
	}
	for i, ent := range man.Shards {
		if len(ent.Replicas) != 2 {
			t.Fatalf("shard %d extra replicas = %d, want 2", i, len(ent.Replicas))
		}
	}

	full, err := Open(dir, &Options{Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Replicas(); got != 3 {
		t.Errorf("Open attached %d replicas, want 3", got)
	}
	if rows := full.ReplicaTable(); len(rows) != 6 {
		t.Errorf("replica table rows = %d, want 6", len(rows))
	}
	parts := doc.Partitions()
	b := &mutate.Batch{Ops: []mutate.Op{{Kind: mutate.OpInsert, Parent: parts[0].ID,
		XML: "<paper><title>layout probe</title></paper>"}}}
	if _, err := full.Apply(b); err != nil {
		t.Fatal(err)
	}
	full.Close()

	// Reopened bounded to the primary only, the directory still serves and
	// the committed epoch is visible.
	one, err := Open(dir, &Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	if got := one.Replicas(); got != 1 {
		t.Errorf("Open -replicas 1 attached %d replicas, want 1", got)
	}
	if got := one.ShardEpochs()[0]; got != 1 {
		t.Errorf("reopened shard 0 epoch = %d, want 1", got)
	}
	if _, err := one.QueryTermsCtx(nil, []string{"layout", "probe"}, core.StrategyPartition, 3, 2); err != nil {
		t.Fatal(err)
	}
}

// fetchSearchQuiet is fetchSearch without the testing.T plumbing, for use
// inside stress goroutines (t.Fatal must not be called off the test
// goroutine); a non-200 body diverges from `want` and fails the compare.
func fetchSearchQuiet(h http.Handler, q string, parallel, k int) string {
	v := url.Values{"q": {q}, "strategy": {"partition"}, "k": {fmt.Sprint(k)}, "parallel": {fmt.Sprint(parallel)}}
	req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Body.String()
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("rate=0.01,jitter=200us-1ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate != 0.01 || c.JitterMin != 200*time.Microsecond || c.JitterMax != time.Millisecond || c.Seed != 7 {
		t.Errorf("parsed %+v", c)
	}
	c, err = ParseChaos("jitter=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if c.JitterMin != 0 || c.JitterMax != 2*time.Millisecond {
		t.Errorf("single-value jitter parsed %+v", c)
	}
	for _, bad := range []string{
		"",               // arms nothing
		"rate=0",         // arms nothing
		"rate=1.5",       // out of range
		"rate=x",         // not a float
		"jitter=5ms-1ms", // inverted range
		"jitter=zzz",     // not a duration
		"seed=-1",        // not a uint
		"flaky",          // not key=value
		"explode=always", // unknown key
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestChaosArm(t *testing.T) {
	c := &Chaos{Rate: 1} // every page IO fails
	f := &kvstore.Faults{}
	c.arm(f, 0, 1)
	s := kvstore.NewMemWithFaults(f)
	defer s.Close()
	doc := corpusDoc(t, 8, 3)
	eng := core.NewFromDocument(doc, &core.Config{DisableMetrics: true})
	if err := eng.SaveIndexWithDocument(s); err == nil {
		t.Error("rate=1 chaos let a write through")
	}
	// Nil spec and nil fault set are both no-ops, matching an unchaosed Open.
	(*Chaos)(nil).arm(f, 0, 0)
	c.arm(nil, 0, 0)
}
