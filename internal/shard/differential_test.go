package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/mutate"
	"xrefine/internal/refine"
	"xrefine/internal/server"
	"xrefine/internal/storage"
	"xrefine/internal/xmltree"
)

// The tests here are differential: a router over N shards must answer
// every query byte-for-byte like one monolithic engine over the
// concatenated corpus — across shard counts, split modes, strategies and
// parallelism — and must degrade (never lie) when a shard fails or a
// budget expires. Comparison happens on the serving layer's JSON bodies,
// so snippets, search-for candidates, scores and ordering are all covered.

func corpusDoc(t *testing.T, authors int, seed int64) *xmltree.Document {
	t.Helper()
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: authors, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// memRouter splits doc across n in-memory shard stores and routers them.
// faults, when non-nil, must have one entry per shard; each store is
// built with that shard's fault injector (disarmed until the test arms it).
func memRouter(t *testing.T, doc *xmltree.Document, n int, mode string, cfg *core.Config, faults []*kvstore.Faults) *Router {
	t.Helper()
	subs, err := SplitDocument(doc, n, mode)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]storage.Backend, n)
	for i, sub := range subs {
		var f *kvstore.Faults
		if faults != nil {
			f = faults[i]
		}
		stores[i] = newTestStore(t, f)
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		if err := eng.SaveIndexWithDocument(stores[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewFromStores(stores, nil, &Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.Close()
		for _, s := range stores {
			s.Close()
		}
	})
	return r
}

func fetchSearch(t *testing.T, h http.Handler, q, strategy string, parallel, k int) string {
	t.Helper()
	v := url.Values{"q": {q}, "strategy": {strategy}, "k": {fmt.Sprint(k)}}
	if parallel > 0 {
		v.Set("parallel", fmt.Sprint(parallel))
	}
	req := httptest.NewRequest(http.MethodGet, "/search?"+v.Encode(), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s strategy=%s parallel=%d: %d %s", q, strategy, parallel, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

var diffQueries = []string{
	"database query",
	"databse quary",     // misspellings force refinement
	"keyword serch xml", // partial mismatch
	"twig matching pattern",
}

// TestShardByteIdentity is the core conformance claim: scatter-gather
// output is byte-identical to the monolith for every shard count, split
// mode, strategy and fan-out, including the 1-shard degenerate router.
func TestShardByteIdentity(t *testing.T) {
	doc := corpusDoc(t, 48, 7)
	mono := server.New(core.NewFromDocument(doc, nil))
	for _, mode := range []string{ModeRange, ModeHash} {
		for _, n := range []int{1, 2, 4, 8} {
			r := memRouter(t, doc, n, mode, nil, nil)
			srv := server.NewFromBackend(r, server.Config{})
			for _, strategy := range []string{"partition", "sle", "stack"} {
				for _, q := range diffQueries {
					want := fetchSearch(t, mono, q, strategy, 1, 3)
					for _, parallel := range []int{0, 1, 3} {
						got := fetchSearch(t, srv, q, strategy, parallel, 3)
						if got != want {
							t.Errorf("mode=%s shards=%d strategy=%s parallel=%d q=%q diverged:\n got: %s\nwant: %s",
								mode, n, strategy, parallel, q, got, want)
						}
					}
				}
			}
		}
	}
}

// TestShardLiveUpdates drives the same random update stream into a live
// monolith and a live sharded router (per-op, routed by partition) and
// requires byte-identical answers after every batch, plus matching epoch
// accounting on /healthz.
func TestShardLiveUpdates(t *testing.T) {
	doc := corpusDoc(t, 24, 9)
	batches, err := datagen.Updates(doc, datagen.UpdatesConfig{Batches: 5, Ops: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, err := WriteStores(doc, filepath.Join(dir, "shards"), 3, ModeRange); err != nil {
		t.Fatal(err)
	}
	r, err := Open(filepath.Join(dir, "shards"), &Options{Live: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := server.NewFromBackend(r, server.Config{})

	mono := core.NewFromDocument(doc, nil)
	monoSrv := server.New(mono)

	opsApplied := 0
	for bi, b := range batches {
		if _, err := mono.Apply(b); err != nil {
			t.Fatalf("batch %d: monolith apply: %v", bi, err)
		}
		// The router commits per op: an op can target a partition created
		// by an earlier op of the same batch, which only becomes routable
		// once that commit rebuilds the ownership map.
		for oi, op := range b.Ops {
			if _, err := r.Apply(&mutate.Batch{Ops: []mutate.Op{op}}); err != nil {
				t.Fatalf("batch %d op %d: router apply: %v", bi, oi, err)
			}
			opsApplied++
		}
		for _, q := range diffQueries[:2] {
			want := fetchSearch(t, monoSrv, q, "partition", 1, 3)
			if got := fetchSearch(t, srv, q, "partition", 2, 3); got != want {
				t.Fatalf("after batch %d: q=%q diverged:\n got: %s\nwant: %s", bi, q, got, want)
			}
		}
	}

	us := r.UpdateStats()
	if !us.Live {
		t.Error("router UpdateStats.Live = false, want true")
	}
	if us.Epoch != uint64(opsApplied) {
		t.Errorf("router epoch sum = %d, want %d (one per committed op)", us.Epoch, opsApplied)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var health struct {
		Shards      int      `json:"shards"`
		ShardEpochs []uint64 `json:"shard_epochs"`
		Epoch       uint64   `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Shards != 3 || len(health.ShardEpochs) != 3 {
		t.Errorf("healthz shards = %d epochs = %v, want 3 shards", health.Shards, health.ShardEpochs)
	}
	var sum uint64
	for _, e := range health.ShardEpochs {
		sum += e
	}
	if sum != health.Epoch || sum != uint64(opsApplied) {
		t.Errorf("healthz epoch = %d, shard epochs sum = %d, want %d", health.Epoch, sum, opsApplied)
	}
}

// TestShardPartialDegrade arms a read fault on one shard's store
// and requires the query to succeed on the surviving shards, tagged
// degraded:"shard-partial" — never an error, never a silently-complete
// answer.
func TestShardPartialDegrade(t *testing.T) {
	doc := corpusDoc(t, 32, 5)
	faults := []*kvstore.Faults{nil, {}}
	subs, err := SplitDocument(doc, 2, ModeRange)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]storage.Backend, 2)
	for i, sub := range subs {
		stores[i] = newTestStore(t, faults[i])
		defer stores[i].Close()
		eng := core.NewFromDocument(sub, &core.Config{DisableMetrics: true})
		if err := eng.SaveIndexWithDocument(stores[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewFromStores(stores, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Armed after open: the construction-time loads (registry, document,
	// doc meta) must succeed. Dropping the page cache forces shard 1's
	// first lazy posting-list load back to the (now faulted) pager.
	stores[1].DropCaches()
	faults[1].FailReads(1)
	resp, err := r.QueryTermsCtx(nil, []string{"database", "query"}, core.StrategyPartition, 3, 2)
	if err != nil {
		t.Fatalf("query with one faulted shard: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != refine.DegradedShardPartial {
		t.Fatalf("degraded=%v reason=%q, want shard-partial", resp.Degraded, resp.DegradedReason)
	}
	if faults[1].Injected() == 0 {
		t.Fatal("fault never fired; the test asserted nothing")
	}
	if got := r.m.partial.Value(); got != 1 {
		t.Errorf("xrefine_shard_partial_total = %d, want 1", got)
	}
	if got := r.m.scanErrors.Sum(); got != 1 {
		t.Errorf("xrefine_shard_scan_errors_total = %d, want 1", got)
	}

	// Healing the store heals the router: the same query now completes
	// clean — the failed scan left no poisoned list or merge state behind.
	faults[1].Clear()
	resp2, err := r.QueryTermsCtx(nil, []string{"database", "query"}, core.StrategyPartition, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Degraded {
		t.Errorf("recovered query still degraded: %q", resp2.DegradedReason)
	}
}

// TestShardBudgetDegrade checks budget plumbing across the fan-out: a
// posting budget or deadline shared by every shard scan degrades the
// response with the budget's reason, and the response stays well-formed.
func TestShardBudgetDegrade(t *testing.T) {
	doc := corpusDoc(t, 48, 7)
	t.Run("posting-budget", func(t *testing.T) {
		r := memRouter(t, doc, 4, ModeRange, &core.Config{PostingBudget: 1}, nil)
		resp, err := r.QueryTermsCtx(nil, []string{"databse", "quary"}, core.StrategyPartition, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded || resp.DegradedReason != refine.DegradedPostings {
			t.Fatalf("degraded=%v reason=%q, want posting-budget", resp.Degraded, resp.DegradedReason)
		}
	})
	t.Run("no-budget-clean", func(t *testing.T) {
		r := memRouter(t, doc, 4, ModeRange, &core.Config{Timeout: time.Hour, PostingBudget: 1 << 40}, nil)
		resp, err := r.QueryTermsCtx(nil, []string{"databse", "quary"}, core.StrategyPartition, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("unconstrained query degraded: %q", resp.DegradedReason)
		}
	})
}

// TestShardExplainSpans checks the trace taxonomy of a scatter-gather
// query: per-shard spans under the refine span, plus a merge span.
func TestShardExplainSpans(t *testing.T) {
	doc := corpusDoc(t, 24, 3)
	r := memRouter(t, doc, 2, ModeRange, nil, nil)
	srv := server.NewFromBackend(r, server.Config{})
	req := httptest.NewRequest(http.MethodGet, "/search?q=database+query&explain=1", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	for _, want := range []string{`"refine:partition"`, `"shard-0"`, `"shard-1"`, `"merge"`, `"rank"`, `"load-lists"`} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %s span:\n%s", want, body)
		}
	}
}

// TestSplitBatch checks the client-side remedy for cross-shard batches:
// Apply rejects them whole, SplitBatch groups them per shard, and the
// groups commit.
func TestSplitBatch(t *testing.T) {
	doc := corpusDoc(t, 24, 9)
	dir := t.TempDir()
	if _, err := WriteStores(doc, dir, 2, ModeRange); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, &Options{Live: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	parts := doc.Partitions()
	first, last := parts[0], parts[len(parts)-1]
	frag := "<paper><title>split batch probe</title></paper>"
	cross := &mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: first.ID, XML: frag},
		{Kind: mutate.OpInsert, Parent: last.ID, XML: frag},
	}}
	if _, err := r.Apply(cross); err == nil {
		t.Fatal("cross-shard batch accepted; want rejection")
	}
	groups, err := r.SplitBatch(cross)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("SplitBatch groups = %d, want 2", len(groups))
	}
	for shard, g := range groups {
		if _, err := r.Apply(g); err != nil {
			t.Fatalf("apply split group on shard %d: %v", shard, err)
		}
	}
	if got := r.UpdateStats().Epoch; got != 2 {
		t.Errorf("epoch sum after split commits = %d, want 2", got)
	}
}
