package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrefine/internal/core"
	"xrefine/internal/testutil"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// FuzzShardMerge fuzzes the scatter-gather merge against the monolith:
// an arbitrary (document seed, shard count, query) triple must produce a
// router response identical to a single engine over the unsplit corpus —
// same verdict, same refined queries, same result nodes — for both split
// modes, and must never panic.
func FuzzShardMerge(f *testing.F) {
	f.Add(int64(1), uint8(2), "database query")
	f.Add(int64(7), uint8(3), "databse quary")
	f.Add(int64(42), uint8(4), "keyword serch xml")
	f.Add(int64(0), uint8(1), "tree")
	f.Add(int64(99), uint8(8), "node data system index")
	f.Fuzz(func(t *testing.T, seed int64, n uint8, q string) {
		terms := tokenize.Query(q)
		if len(terms) == 0 {
			return
		}
		if len(terms) > 6 {
			terms = terms[:6] // keyword queries; cap the DP width
		}
		shards := int(n%8) + 1
		doc, err := xmltree.ParseString(testutil.GenXML(rand.New(rand.NewSource(seed))), nil)
		if err != nil {
			t.Fatal(err)
		}
		mono := core.NewFromDocument(doc, &core.Config{DisableMetrics: true})
		resp, err := mono.QueryTerms(terms, core.StrategyPartition, 3)
		if err != nil {
			t.Fatalf("monolith %v: %v", terms, err)
		}
		want := fuzzSig(resp)
		for _, mode := range []string{ModeRange, ModeHash} {
			r := memRouter(t, doc, shards, mode, &core.Config{DisableMetrics: true}, nil)
			got, err := r.QueryTermsCtx(context.Background(), terms, core.StrategyPartition, 3, 0)
			if err != nil {
				t.Fatalf("router %v shards=%d mode=%s: %v", terms, shards, mode, err)
			}
			if s := fuzzSig(got); s != want {
				t.Fatalf("merge diverged (%v, shards=%d, mode=%s):\n got  %s\n want %s",
					terms, shards, mode, s, want)
			}
		}
	})
}

// fuzzSig flattens a response to the fields the server serializes.
func fuzzSig(resp *core.Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%s|", resp.NeedRefine, resp.Degraded, resp.DegradedReason)
	for _, rq := range resp.Queries {
		fmt.Fprintf(&b, "%s|%v|%v|", strings.Join(rq.Keywords, ","), rq.DSim, rq.Score)
		for _, m := range rq.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
	}
	return b.String()
}
