package core

import (
	"fmt"
	"strings"
	"testing"

	"xrefine/internal/kvstore"
	"xrefine/internal/narrow"
	"xrefine/internal/xmltree"
)

func broadDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<bib>")
	topics := []string{"indexing", "streams", "mining", "caching"}
	for a := 0; a < 30; a++ {
		b.WriteString("<author><publications>")
		for p := 0; p < 3; p++ {
			fmt.Fprintf(&b, "<paper><title>database %s</title><year>%d</year></paper>",
				topics[(a+p)%len(topics)], 2000+(a+p)%4)
		}
		b.WriteString("</publications></author>")
	}
	b.WriteString("</bib>")
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestEngineNarrow(t *testing.T) {
	doc := broadDoc(t)
	e := NewFromDocument(doc, nil)
	out, err := e.Narrow("database", &narrow.Options{MaxResults: 20, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.TooBroad || len(out.Suggestions) == 0 {
		t.Fatalf("narrow outcome = %+v", out)
	}
	for _, s := range out.Suggestions {
		if len(s.Results) >= out.OriginalResults {
			t.Errorf("suggestion %v failed to narrow", s.Keywords)
		}
	}
}

func TestEngineNarrowWithoutDocument(t *testing.T) {
	doc := broadDoc(t)
	e := NewFromDocument(doc, nil)
	store := kvstore.NewMem()
	defer store.Close()
	if err := e.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Document() != nil {
		t.Fatal("loaded engine should have no document")
	}
	if _, err := loaded.Narrow("database", nil); err != narrow.ErrNeedsDocument {
		t.Errorf("expected ErrNeedsDocument, got %v", err)
	}
}

func TestEngineNarrowEmptyQuery(t *testing.T) {
	e := NewFromDocument(broadDoc(t), nil)
	if _, err := e.Narrow("  ", nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSaveIndexWithDocumentRestoresNarrow(t *testing.T) {
	doc := broadDoc(t)
	e := NewFromDocument(doc, nil)
	store := kvstore.NewMem()
	defer store.Close()
	if err := e.SaveIndexWithDocument(store); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Document() == nil {
		t.Fatal("document not restored")
	}
	out, err := loaded.Narrow("database", &narrow.Options{MaxResults: 20, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.TooBroad || len(out.Suggestions) == 0 {
		t.Fatalf("narrow on restored engine: %+v", out)
	}
	// Snippets work too.
	resp, err := loaded.Query("database indexing")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Queries) == 0 || len(resp.Queries[0].Results) == 0 {
		t.Fatal("no results")
	}
	s := Snippet(loaded.Document(), resp.Queries[0].Results[0], 60)
	if !strings.Contains(s, "database") {
		t.Errorf("snippet = %q", s)
	}
}

func TestSaveIndexWithDocumentRequiresDocument(t *testing.T) {
	e := NewFromIndex(NewFromDocument(broadDoc(t), nil).Index(), nil)
	store := kvstore.NewMem()
	defer store.Close()
	if err := e.SaveIndexWithDocument(store); err == nil {
		t.Error("document-less engine saved a document")
	}
}
