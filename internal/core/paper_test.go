package core

import (
	"strings"
	"testing"

	"xrefine/internal/xmltree"
)

// paper_test reconstructs the running examples of the paper's Sections I
// and III on a Figure-1-like document and checks the engine end-to-end.

const figure1 = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online DBLP record</title>
        <year>2001</year>
      </inproceedings>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <article>
        <title>XML data mining</title>
        <year>2003</year>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <inproceedings>
        <title>XML keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
    <hobby>swimming</hobby>
  </author>
</bib>`

func fig1Engine(t *testing.T) *Engine {
	t.Helper()
	doc, err := xmltree.ParseString(figure1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewFromDocument(doc, &Config{TopK: 4})
}

// Example 1: Q = {database, publication}. The data uses inproceedings and
// article, so the query has no result; the engine must substitute the
// synonym and return matching publications.
func TestPaperExample1(t *testing.T) {
	e := fig1Engine(t)
	resp, err := e.Query("database publication")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("Example 1 query not flagged")
	}
	for _, q := range resp.Queries {
		kws := strings.Join(q.Keywords, " ")
		if kws == "database inproceedings" {
			if len(q.Results) == 0 {
				t.Error("synonym refinement without results")
			}
			return
		}
	}
	t.Fatalf("no inproceedings substitution among %+v", resp.Queries)
}

// The Q0 scenario of Section III-A: a query whose only SLCA is the
// document root must be refined even though every keyword matches, and
// the refinement keeps results inside the author entity.
func TestPaperQ0RootOnlySLCA(t *testing.T) {
	e := fig1Engine(t)
	// "john" is under author 0.0, "swimming" under author 0.1: the only
	// common ancestor is the root.
	resp, err := e.Query("john swimming")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("root-only query not flagged (Definition 3.4)")
	}
	if len(resp.Queries) == 0 {
		t.Fatal("no refinement found")
	}
	for _, q := range resp.Queries {
		for _, m := range q.Results {
			if len(m.ID) < 2 {
				t.Errorf("refinement %v returned the root", q.Keywords)
			}
		}
	}
}

// The Q4 scenario of Section I: an over-restrictive query ("John's
// publications about XML in year 2003") whose only covering node is the
// root; refinement by deletion must produce meaningful sub-queries.
func TestPaperQ4OverRestrictive(t *testing.T) {
	e := fig1Engine(t)
	resp, err := e.Query("john xml 2003 swimming")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("over-restrictive query not flagged")
	}
	if len(resp.Queries) == 0 {
		t.Fatal("no refinements")
	}
	best := resp.Queries[0]
	// The best refinement must keep a strict subset of the original
	// keywords (pure deletions, since every keyword exists in the data).
	orig := map[string]bool{"john": true, "xml": true, "2003": true, "swimming": true}
	for _, k := range best.Keywords {
		if !orig[k] {
			t.Errorf("unexpected keyword %q in deletion refinement", k)
		}
	}
	if len(best.Keywords) >= 4 {
		t.Errorf("nothing deleted: %v", best.Keywords)
	}
	if len(best.Results) == 0 {
		t.Error("refinement without results")
	}
	// Provenance records the deletions.
	hasDelete := false
	for _, st := range best.Steps {
		if st.Delete != "" {
			hasDelete = true
		}
	}
	if !hasDelete {
		t.Errorf("no deletion step in %v", best.Steps)
	}
}

// Example 4's query {on, line, data, base} must merge into
// {online, database} with the title node as its meaningful SLCA, not the
// root-level candidates the paper shows being rejected.
func TestPaperExample4Merges(t *testing.T) {
	e := fig1Engine(t)
	resp, err := e.Query("on line data base")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("Example 4 query not flagged")
	}
	// The double-merge candidate must surface with the minimal
	// dissimilarity and the title node as its meaningful SLCA. (Whether
	// it also ranks first depends on the corpus statistics feeding
	// Formula 10 — on a 20-node document the frequency components can
	// outweigh the decay; the full-scale Table VII run shows rank-1.)
	var merged *RankedQuery
	minDSim := resp.Queries[0].DSim
	for i := range resp.Queries {
		q := &resp.Queries[i]
		if q.DSim < minDSim {
			minDSim = q.DSim
		}
		if strings.Join(q.Keywords, " ") == "database online" {
			merged = q
		}
	}
	if merged == nil {
		t.Fatalf("merge candidate missing from %+v", resp.Queries)
	}
	if merged.DSim != 2 || minDSim != 2 {
		t.Errorf("dSim = %v (min %v), want 2 (two merges)", merged.DSim, minDSim)
	}
	if len(merged.Results) != 1 || merged.Results[0].ID.String() != "0.0.1.1.0" {
		t.Errorf("results = %+v, want the online-database title", merged.Results)
	}
}

// A collection of documents behaves like one document with the members as
// partitions — the sponsored-search many-feeds deployment.
func TestCollectionEngine(t *testing.T) {
	feedA, err := xmltree.ParseString(`<feed><ad><product>running shoes</product></ad></feed>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	feedB, err := xmltree.ParseString(`<feed><ad><product>hiking boots</product></ad></feed>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := xmltree.Collection("catalog", feedA, feedB)
	if err != nil {
		t.Fatal(err)
	}
	e := NewFromDocument(col, nil)
	resp, err := e.Query("runing shoes") // typo
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine || len(resp.Queries) == 0 {
		t.Fatalf("collection refinement failed: %+v", resp)
	}
	if got := strings.Join(resp.Queries[0].Keywords, " "); got != "running shoes" {
		t.Errorf("best = %q", got)
	}
	if len(resp.Queries[0].Results) == 0 {
		t.Error("no results over collection")
	}
}
