package core

import (
	"path/filepath"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/mutate"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
	"xrefine/internal/xmltree"
)

// seedLiveStoreKind is seedLiveStore on an explicit storage engine: a
// .kv page file for the B+tree, a segment directory for the log engine.
func seedLiveStoreKind(t *testing.T, xml string, kind storage.Kind) (string, string) {
	t.Helper()
	dir := t.TempDir()
	name := "ix.kv"
	if kind == storage.KindLog {
		name = "ix.logdb"
	}
	path := filepath.Join(dir, name)
	wal := filepath.Join(dir, "ix.wal")
	doc, err := xmltree.ParseString(xml, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := backends.Open(kind, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewFromDocument(doc, nil)
	if err := e.SaveIndexWithDocument(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path, wal
}

// TestCheckpointTruncatesWALAndBoundsReopen is the bounded-reopen claim
// `make soak` leans on: after N applied epochs and one Checkpoint, the
// WAL is empty (nothing to replay) and — on the log engine — the store's
// durable state is compacted with hint files covering every sealed
// segment, so a reopen pays hint loads plus at most the active segment's
// scan instead of replaying N epochs of log. Query output must survive
// the whole cycle byte-identically.
func TestCheckpointTruncatesWALAndBoundsReopen(t *testing.T) {
	for _, kind := range []storage.Kind{storage.KindBTree, storage.KindLog} {
		t.Run(string(kind), func(t *testing.T) {
			path, wal := seedLiveStoreKind(t, applyBaseXML, kind)
			store, err := backends.Open(kind, path, nil)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := OpenLive(store, wal, nil)
			if err != nil {
				t.Fatal(err)
			}
			const epochs = 6
			for i := 0; i < epochs; i++ {
				b := &mutate.Batch{Ops: []mutate.Op{{
					Kind: mutate.OpInsert, Parent: dewey.Root(),
					XML: `<paper><title>checkpointed keyword churn</title></paper>`,
				}}}
				if _, err := eng.Apply(b); err != nil {
					t.Fatalf("apply %d: %v", i, err)
				}
			}
			want := applySigs(t, eng, applyQueries)

			if err := eng.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if n := eng.UpdateStats().WALSizeBytes; n != 0 {
				t.Fatalf("WAL holds %d bytes after checkpoint, want 0", n)
			}
			if kind == storage.KindLog {
				st := store.StorageStats()
				if st.Compactions < 1 {
					t.Fatalf("checkpoint ran no compaction: %+v", st)
				}
				if amp := st.Amplification(); amp >= 2 {
					t.Fatalf("amplification %.2f after checkpoint, want < 2", amp)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			store2, err := backends.Open(kind, path, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer store2.Close()
			if kind == storage.KindLog {
				// The bounded-reopen property itself: every sealed segment
				// came back through its hint file; only the active segment
				// may need a scan.
				st := store2.StorageStats()
				if st.HintLoads < 1 {
					t.Fatalf("reopen used no hint files: %+v", st)
				}
				if st.ScanLoads > 1 {
					t.Fatalf("reopen scanned %d segments, want <= 1 (active only)", st.ScanLoads)
				}
			}
			re, err := OpenLive(store2, wal, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if n := re.UpdateStats().ReplayedBatches; n != 0 {
				t.Fatalf("reopen replayed %d WAL batches after checkpoint", n)
			}
			if re.Epoch() != epochs {
				t.Fatalf("reopened at epoch %d, want %d", re.Epoch(), epochs)
			}
			got := applySigs(t, re, applyQueries)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("query %v changed across checkpoint+reopen", applyQueries[i])
				}
			}
		})
	}
}
