package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xrefine/internal/kvstore"
)

// TestConcurrentQueriesRace drives one engine from many goroutines with a
// mixed workload — cache hits and misses, sequential and parallel
// partition walks, lazily loaded posting lists — and checks every response
// against a single-threaded reference. Run under -race this covers the
// index singleflight (concurrent first touches of the same and different
// terms over the kvstore), the shared pruning bound, and the response
// cache.
func TestConcurrentQueriesRace(t *testing.T) {
	ref, _ := newEngine(t, &Config{Parallelism: 1})
	store := kvstore.NewMem()
	defer store.Close()
	if err := ref.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	// The engine under test loads lists lazily from the store, caches
	// responses, and fans partition walks out to 4 workers. The cache
	// holds the whole workload so revisits are guaranteed hits while
	// every first touch is a miss — the mix is deterministic under any
	// interleaving (an LRU smaller than a cyclic working set can miss
	// forever).
	eng, err := Open(store, &Config{Parallelism: 4, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}

	queries := [][]string{
		{"online", "database"},
		{"online", "databse"},
		{"keyword", "search"},
		{"matching", "twig", "patterns"},
		{"skyline"},
		{"database", "systems"},
		{"efficient", "keyword"},
		{"publication", "search"},
	}
	type expectation struct {
		sig string
		err string
	}
	want := make([]expectation, len(queries))
	for i, q := range queries {
		resp, err := ref.QueryTerms(q, StrategyPartition, 3)
		if err != nil {
			want[i] = expectation{err: err.Error()}
			continue
		}
		want[i] = expectation{sig: responseSig(resp)}
	}

	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g*rounds + r*13) % len(queries)
				// Alternate the per-query override so sequential and
				// parallel walks interleave on the same engine.
				parallelism := 0
				if r%3 == 0 {
					parallelism = 1
				}
				resp, err := eng.QueryTermsParallel(queries[i], StrategyPartition, 3, parallelism)
				if err != nil {
					if want[i].err != err.Error() {
						errs <- fmt.Sprintf("query %v: error %q, want %q", queries[i], err, want[i].err)
						return
					}
					continue
				}
				if got := responseSig(resp); got != want[i].sig {
					errs <- fmt.Sprintf("query %v diverged under concurrency:\ngot  %s\nwant %s", queries[i], got, want[i].sig)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := eng.Stats()
	if st.Queries != goroutines*rounds {
		t.Errorf("Queries = %d, want %d", st.Queries, goroutines*rounds)
	}
	if st.CacheHits == 0 {
		t.Error("workload produced no cache hits; stress lost its hit/miss mix")
	}
}

// responseSig flattens the fields the differential cares about.
func responseSig(r *Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "refine=%v;", r.NeedRefine)
	for _, q := range r.Queries {
		fmt.Fprintf(&b, "%s|%.4f|%.6f|", strings.Join(q.Keywords, ","), q.DSim, q.Score)
		for _, m := range q.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
	}
	return b.String()
}
