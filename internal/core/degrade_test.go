package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"xrefine/internal/refine"
)

// TestPostingBudgetDegrades: a posting budget too small for the full walk
// must yield a partial response flagged Degraded with the posting-budget
// reason — not an error, not a silently-complete answer.
func TestPostingBudgetDegrades(t *testing.T) {
	e, _ := newEngine(t, &Config{PostingBudget: 1})
	resp, err := e.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("budget of 1 posting did not degrade the response")
	}
	if resp.DegradedReason != refine.DegradedPostings {
		t.Errorf("DegradedReason = %q, want %q", resp.DegradedReason, refine.DegradedPostings)
	}
	st := e.Stats()
	if st.Degraded != 1 {
		t.Errorf("stats Degraded = %d, want 1", st.Degraded)
	}
}

// TestExpiredDeadlineDegrades: a context whose deadline already passed
// degrades the response (reason "deadline") rather than erroring — the
// deadline is a best-effort bound, not a failure.
func TestExpiredDeadlineDegrades(t *testing.T) {
	e, _ := newEngine(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	resp, err := e.QueryTermsCtx(ctx, []string{"databse"}, StrategyPartition, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("expired deadline did not degrade the response")
	}
	if resp.DegradedReason != refine.DegradedDeadline {
		t.Errorf("DegradedReason = %q, want %q", resp.DegradedReason, refine.DegradedDeadline)
	}
}

// TestCanceledContextErrors: outright cancellation is the caller leaving —
// the query must fail with context.Canceled, never fabricate a response.
func TestCanceledContextErrors(t *testing.T) {
	e, _ := newEngine(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{StrategyPartition, StrategySLE} {
		if _, err := e.QueryTermsCtx(ctx, []string{"databse"}, strat, 3, 0); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", strat, err)
		}
	}
}

// TestDegradedResponseNeverCached is the regression test for the cache
// poisoning hazard: a degraded partial response must not be stored, so a
// repeat of the same query is recomputed (and an unconstrained engine
// sharing the cache key space could never be served the truncated answer).
func TestDegradedResponseNeverCached(t *testing.T) {
	e, _ := newEngine(t, &Config{PostingBudget: 1, CacheSize: 8})
	r1, err := e.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Degraded {
		t.Fatal("setup: response not degraded")
	}
	r2, err := e.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("degraded response was served from the cache")
	}
	if !r2.Degraded {
		t.Error("second run not degraded — a complete answer leaked from somewhere")
	}
	if st := e.Stats(); st.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 (degraded responses are uncacheable)", st.CacheHits)
	}
	// A complete response on the same engine type still caches normally.
	ef, _ := newEngine(t, &Config{CacheSize: 8})
	c1, err := ef.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Degraded {
		t.Fatal("unbudgeted engine degraded")
	}
	c2, err := ef.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("complete response not cached")
	}
}

// TestZeroConfigNotDegraded: with no deadline and no budget the pipeline
// must behave exactly as before — complete responses, no degraded flag.
func TestZeroConfigNotDegraded(t *testing.T) {
	e, _ := newEngine(t, nil)
	for _, strat := range []Strategy{StrategyPartition, StrategySLE, StrategyStack} {
		resp, err := e.QueryTermsCtx(context.Background(), []string{"databse"}, strat, 3, 0)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if resp.Degraded || resp.DegradedReason != "" {
			t.Errorf("%v: unconstrained query flagged degraded", strat)
		}
	}
}
