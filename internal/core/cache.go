package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// queryCache is a small LRU over complete responses. Serving workloads
// (sponsored search especially) repeat queries heavily, and the whole
// pipeline — rule generation, inference, exploration, ranking — is
// deterministic for a fixed index, so caching whole responses is sound.
// Cached responses are shared; callers must treat them as read-only, which
// the Response API already implies.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *Response
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// cacheKey identifies a query execution: terms are order-insensitive at
// the semantic level but the DP consumes them in order, so the raw order
// participates in the key. The epoch generation leads the key — a cached
// response is only valid for the exact index state that produced it, so
// an applied update batch implicitly invalidates every older entry (they
// age out of the LRU unreferenced).
func cacheKey(gen uint64, terms []string, strategy Strategy, k int) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('@')
	b.WriteString(strconv.Itoa(int(strategy)))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(k))
	for _, t := range terms {
		b.WriteByte(' ')
		b.WriteString(t)
	}
	return b.String()
}

func (c *queryCache) get(key string) (*Response, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *queryCache) put(key string, resp *Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	c.byKey[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached responses (for tests).
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
