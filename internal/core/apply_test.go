package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"xrefine/internal/datagen"
	"xrefine/internal/dewey"
	"xrefine/internal/kvstore"
	"xrefine/internal/mutate"
	"xrefine/internal/xmltree"
)

const applyBaseXML = `<root>
  <paper><title>xml keyword search</title><author>smith</author></paper>
  <paper><title>query refinement</title><author>jones</author></paper>
  <paper><title>stale cache sentinel</title><author>lee</author></paper>
</root>`

func applyTestEngine(t *testing.T, cfg *Config) *Engine {
	t.Helper()
	doc, err := xmltree.ParseString(applyBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewFromDocument(doc, cfg)
}

// applySigs answers every query on e and returns the flattened responses —
// the differential currency of these tests.
func applySigs(t *testing.T, e *Engine, queries [][]string) []string {
	t.Helper()
	out := make([]string, len(queries))
	for i, q := range queries {
		resp, err := e.QueryTerms(q, StrategyPartition, 3)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = responseSig(resp)
	}
	return out
}

var applyQueries = [][]string{
	{"keyword", "search"},
	{"refinement"},
	{"sentinel"},
	{"freshly", "minted"},
}

func TestApplyAdvancesEpochAndMatchesRebuild(t *testing.T) {
	e := applyTestEngine(t, nil)
	if e.Epoch() != 0 {
		t.Fatalf("fresh engine at epoch %d", e.Epoch())
	}
	res, err := e.Apply(&mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<paper><title>freshly minted keyword entry</title><author>smith</author></paper>`},
		{Kind: mutate.OpDelete, Target: dewey.ID{0, 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || e.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", res.Epoch, e.Epoch())
	}
	if res.InsertOps != 1 || res.DeleteOps != 1 || res.Inserted == 0 || res.Deleted == 0 {
		t.Fatalf("counts = %+v", res)
	}
	// The updated engine must answer exactly like an engine rebuilt from
	// scratch over the mutated document.
	rebuilt := NewFromDocument(e.Document(), nil)
	got := applySigs(t, e, applyQueries)
	want := applySigs(t, rebuilt, applyQueries)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("query %v diverged from rebuild\ngot  %s\nwant %s", applyQueries[i], got[i], want[i])
		}
	}
}

func TestApplyRejectsBadBatchAtomically(t *testing.T) {
	e := applyTestEngine(t, nil)
	before := applySigs(t, e, applyQueries)
	_, err := e.Apply(&mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<paper><title>should not land</title></paper>`},
		{Kind: mutate.OpDelete, Target: dewey.ID{0, 9, 9}}, // no such node
	}})
	if err == nil {
		t.Fatal("bad batch applied without error")
	}
	if e.Epoch() != 0 {
		t.Fatalf("failed batch advanced epoch to %d", e.Epoch())
	}
	after := applySigs(t, e, applyQueries)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("query %v changed after a rejected batch", applyQueries[i])
		}
	}
}

// TestQueryCacheDropsPreUpdateResults is the regression test for the cache
// key ignoring the index generation: a post-update query must never be
// served a pre-update response out of the LRU.
func TestQueryCacheDropsPreUpdateResults(t *testing.T) {
	e := applyTestEngine(t, &Config{CacheSize: 16})
	q := []string{"stale", "sentinel"}
	r1, err := e.QueryTerms(q, StrategyPartition, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NeedRefine || len(r1.Queries[0].Results) == 0 {
		t.Fatalf("precondition: query unsatisfied before update: %+v", r1)
	}
	if _, err := e.QueryTerms(q, StrategyPartition, 3); err != nil {
		t.Fatal(err)
	}
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// Delete the only partition containing both terms.
	if _, err := e.Apply(&mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpDelete, Target: dewey.ID{0, 2}},
	}}); err != nil {
		t.Fatal(err)
	}
	r3, err := e.QueryTerms(q, StrategyPartition, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("post-update query hit the stale cache (hits = %d)", hits)
	}
	if responseSig(r3) == responseSig(r1) {
		t.Fatal("post-update response identical to pre-update response")
	}
	want, err := NewFromDocument(e.Document(), nil).QueryTerms(q, StrategyPartition, 3)
	if err != nil {
		t.Fatal(err)
	}
	if responseSig(r3) != responseSig(want) {
		t.Fatalf("post-update response diverged from rebuild\ngot  %s\nwant %s", responseSig(r3), responseSig(want))
	}
	// The new epoch caches normally.
	if _, err := e.QueryTerms(q, StrategyPartition, 3); err != nil {
		t.Fatal(err)
	}
	if hits := e.Stats().CacheHits; hits != 2 {
		t.Fatalf("new-epoch response not cached (hits = %d)", hits)
	}
}

// seedLiveStore builds a store file carrying index + document and returns
// its path plus the WAL path beside it.
func seedLiveStore(t *testing.T, xml string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.kv")
	wal := filepath.Join(dir, "ix.wal")
	doc, err := xmltree.ParseString(xml, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewFromDocument(doc, nil)
	if err := e.SaveIndexWithDocument(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path, wal
}

func TestOpenLiveApplyPersistsAcrossReopen(t *testing.T) {
	path, wal := seedLiveStore(t, applyBaseXML)
	store, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := OpenLive(store, wal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.UpdateStats().Live {
		t.Fatal("OpenLive engine not live")
	}
	for i, b := range []*mutate.Batch{
		{Ops: []mutate.Op{{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<paper><title>freshly minted keyword</title></paper>`}}},
		{Ops: []mutate.Op{{Kind: mutate.OpDelete, Target: dewey.ID{0, 1}}}},
	} {
		res, err := eng.Apply(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.Epoch != uint64(i+1) {
			t.Fatalf("batch %d produced epoch %d", i, res.Epoch)
		}
		if res.WALBytes == 0 {
			t.Fatalf("batch %d logged no WAL bytes", i)
		}
	}
	want := applySigs(t, eng, applyQueries)
	if eng.UpdateStats().WALSizeBytes != 0 {
		t.Fatalf("WAL not truncated after commit: %d bytes", eng.UpdateStats().WALSizeBytes)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	re, err := OpenLive(store2, wal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 2 {
		t.Fatalf("reopened at epoch %d, want 2", re.Epoch())
	}
	if n := re.UpdateStats().ReplayedBatches; n != 0 {
		t.Fatalf("clean reopen replayed %d batches", n)
	}
	got := applySigs(t, re, applyQueries)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %v changed across reopen\ngot  %s\nwant %s", applyQueries[i], got[i], want[i])
		}
	}
	// And the persisted state matches a rebuild of the restored document.
	rebuilt := applySigs(t, NewFromDocument(re.Document(), nil), applyQueries)
	for i := range want {
		if got[i] != rebuilt[i] {
			t.Errorf("query %v diverged from rebuild after reopen", applyQueries[i])
		}
	}
}

// TestOpenLiveReplaysPendingWAL simulates a crash between WAL append and
// store commit: the logged batch must be re-applied on open.
func TestOpenLiveReplaysPendingWAL(t *testing.T) {
	path, wal := seedLiveStore(t, applyBaseXML)
	b := &mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<paper><title>freshly minted keyword</title></paper>`},
	}}
	w, err := mutate.OpenWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, b.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	store, err := kvstore.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng, err := OpenLive(store, wal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Epoch() != 1 {
		t.Fatalf("epoch %d after replay, want 1", eng.Epoch())
	}
	if n := eng.UpdateStats().ReplayedBatches; n != 1 {
		t.Fatalf("replayed %d batches, want 1", n)
	}
	if store.Epoch() != 1 {
		t.Fatalf("store epoch %d after replay, want 1", store.Epoch())
	}
	if eng.UpdateStats().WALSizeBytes != 0 {
		t.Fatal("WAL not reset after replay")
	}
	// The replayed engine equals an in-memory engine that applied the batch.
	shadow := applyTestEngine(t, nil)
	if _, err := shadow.Apply(b); err != nil {
		t.Fatal(err)
	}
	got := applySigs(t, eng, applyQueries)
	want := applySigs(t, shadow, applyQueries)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %v: replay diverged from direct apply\ngot  %s\nwant %s", applyQueries[i], got[i], want[i])
		}
	}
}

// TestApplyCrashRecoveryMatrix arms storage failpoints during Apply and
// requires the store to reopen at the last committed epoch every time,
// answering queries exactly as a clean engine at that epoch would. A
// fault may cost the in-flight batch, never durability or correctness.
func TestApplyCrashRecoveryMatrix(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{{"database", "query"}, {"epoch", "sentinel"}, {"keyword"}}
	batch1 := &mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<author><name>epoch sentinel</name></author>`},
	}}
	batch2 := &mutate.Batch{Ops: []mutate.Op{
		{Kind: mutate.OpInsert, Parent: dewey.Root(), XML: `<author><name>second wave keyword</name></author>`},
		{Kind: mutate.OpDelete, Target: dewey.ID{0, 1}},
	}}
	// Shadow engines give the expected signatures for epochs 1 and 2.
	shadow := NewFromDocument(doc.Clone(), nil)
	if _, err := shadow.Apply(batch1); err != nil {
		t.Fatal(err)
	}
	sigs := map[uint64][]string{1: applySigs(t, shadow, queries)}
	if _, err := shadow.Apply(batch2); err != nil {
		t.Fatal(err)
	}
	sigs[2] = applySigs(t, shadow, queries)

	arms := []struct {
		name string
		arm  func(f *kvstore.Faults)
	}{
		{"write-fail-1", func(f *kvstore.Faults) { f.FailWrites(1) }},
		{"write-fail-2", func(f *kvstore.Faults) { f.FailWrites(2) }},
		{"write-fail-5", func(f *kvstore.Faults) { f.FailWrites(5) }},
		{"write-fail-20", func(f *kvstore.Faults) { f.FailWrites(20) }},
		{"torn-write-1", func(f *kvstore.Faults) { f.TornWrite(1) }},
		{"torn-write-3", func(f *kvstore.Faults) { f.TornWrite(3) }},
		{"torn-write-8", func(f *kvstore.Faults) { f.TornWrite(8) }},
	}
	var sawFail, sawSilent int
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ix.kv")
			wal := filepath.Join(dir, "ix.wal")
			store, err := kvstore.Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			seedEng := NewFromDocument(doc.Clone(), nil)
			if err := seedEng.SaveIndexWithDocument(store); err != nil {
				t.Fatal(err)
			}
			if err := store.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			faults := &kvstore.Faults{}
			store, err = kvstore.Open(path, &kvstore.Options{Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := OpenLive(store, wal, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Apply(batch1); err != nil {
				t.Fatalf("clean batch: %v", err)
			}
			arm.arm(faults)
			if _, err := eng.Apply(batch2); err != nil {
				sawFail++
			} else {
				sawSilent++ // torn write: commit reported success
			}
			faults.Clear()
			// Crash: drop the process state without any graceful flush.
			eng.Close()
			store.Close()

			store2, err := kvstore.Open(path, nil)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer store2.Close()
			re, err := OpenLive(store2, wal, nil)
			if err != nil {
				t.Fatalf("reopen live: %v", err)
			}
			defer re.Close()
			ep := re.Epoch()
			want, ok := sigs[ep]
			if !ok {
				t.Fatalf("reopened at epoch %d, want 1 or 2", ep)
			}
			got := applySigs(t, re, queries)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("epoch %d query %v diverged from clean engine\ngot  %s\nwant %s",
						ep, queries[i], got[i], want[i])
				}
			}
		})
	}
	if sawFail == 0 || sawSilent == 0 {
		t.Fatalf("matrix lost an outcome class: failed=%d silent=%d", sawFail, sawSilent)
	}
}

// TestQueriesPinEpochDuringApply races readers against a writer applying
// batches: every response must exactly match one of the per-epoch clean
// signatures — never a blend of two epochs. Run under -race this also
// proves the epoch swap is properly synchronized.
func TestQueriesPinEpochDuringApply(t *testing.T) {
	const epochs = 5
	q := []string{"keyword"}
	// Expected signature per epoch, from a sequential shadow engine.
	base, err := xmltree.ParseString(applyBaseXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*mutate.Batch, epochs)
	for i := range batches {
		batches[i] = &mutate.Batch{Ops: []mutate.Op{{
			Kind:   mutate.OpInsert,
			Parent: dewey.Root(),
			XML:    fmt.Sprintf(`<paper><title>wave%d keyword entry</title></paper>`, i),
		}}}
	}
	shadow := NewFromDocument(base.Clone(), nil)
	allowed := map[string]bool{applySigs(t, shadow, [][]string{q})[0]: true}
	for _, b := range batches {
		if _, err := shadow.Apply(b); err != nil {
			t.Fatal(err)
		}
		allowed[applySigs(t, shadow, [][]string{q})[0]] = true
	}

	eng := NewFromDocument(base, &Config{CacheSize: 8})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := eng.QueryTerms(q, StrategyPartition, 3)
				if err != nil {
					select {
					case errs <- fmt.Sprintf("query error: %v", err):
					default:
					}
					return
				}
				if sig := responseSig(resp); !allowed[sig] {
					select {
					case errs <- fmt.Sprintf("response matches no epoch: %s", sig):
					default:
					}
					return
				}
			}
		}()
	}
	for _, b := range batches {
		if _, err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if eng.Epoch() != epochs {
		t.Fatalf("epoch %d after %d applies", eng.Epoch(), epochs)
	}
}
