package core

import (
	"fmt"
	"sync"
	"testing"

	"xrefine/internal/xmltree"
)

func cacheDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(`
<bib>
  <author><publications>
    <paper><title>database systems</title><year>2003</year></paper>
    <paper><title>keyword search</title><year>2005</year></paper>
  </publications></author>
</bib>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestCacheHitReturnsSameResponse(t *testing.T) {
	e := NewFromDocument(cacheDoc(t), &Config{CacheSize: 8})
	r1, err := e.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query("databse")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache miss on identical query")
	}
	// Different k or strategy must not collide.
	r3, err := e.QueryTerms([]string{"databse"}, StrategyPartition, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different k collided in cache")
	}
	r4, err := e.QueryTerms([]string{"databse"}, StrategySLE, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("different strategy collided in cache")
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	e := NewFromDocument(cacheDoc(t), nil)
	r1, _ := e.Query("databse")
	r2, _ := e.Query("databse")
	if r1 == r2 {
		t.Error("caching active without CacheSize")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newQueryCache(2)
	a, b, d := &Response{}, &Response{}, &Response{}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // touch a -> b becomes LRU
		t.Fatal("a missing")
	}
	c.put("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// overwrite moves to front and replaces
	a2 := &Response{}
	c.put("a", a2)
	if got, _ := c.get("a"); got != a2 {
		t.Error("overwrite ignored")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *queryCache
	if _, ok := c.get("x"); ok {
		t.Error("nil cache hit")
	}
	c.put("x", &Response{}) // must not panic
	if c.len() != 0 {
		t.Error("nil cache length")
	}
}

func TestCacheConcurrent(t *testing.T) {
	e := NewFromDocument(cacheDoc(t), &Config{CacheSize: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				q := fmt.Sprintf("databse%d", j%3)
				if j%3 == 0 {
					q = "database"
				}
				if _, err := e.Query(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEngineStats(t *testing.T) {
	e := NewFromDocument(cacheDoc(t), &Config{CacheSize: 4})
	if _, err := e.Query("databse"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("databse"); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := e.Query("database"); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 3 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d", st.CacheHits)
	}
	if st.Refined != 2 { // the two databse lookups
		t.Errorf("Refined = %d", st.Refined)
	}
}
