package core

import (
	"strings"
	"testing"
)

// Targeted tests for entry points the broader suites reach only through
// other packages.

func TestNewFromXMLAndErrors(t *testing.T) {
	eng, err := NewFromXML(strings.NewReader(`<r><a><b>word here</b></a></r>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Document() == nil {
		t.Error("NewFromXML should retain the document")
	}
	if _, err := NewFromXML(strings.NewReader("not xml"), nil); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := NewFromXMLStream(strings.NewReader("<a><b></a>"), nil); err == nil {
		t.Error("malformed XML accepted by stream builder")
	}
}

func TestExploreDirect(t *testing.T) {
	e, _ := newEngine(t, nil)
	out, cands, err := e.Explore([]string{"online", "databse"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("no candidates from Explore")
	}
	if len(cands) == 0 {
		t.Error("no search-for candidates")
	}
	if _, _, err := e.Explore(nil, 3); err == nil {
		t.Error("empty terms accepted")
	}
}

func TestStackTopKThroughEngine(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.QueryTerms([]string{"online", "databse"}, StrategyStack, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine || len(resp.Queries) == 0 {
		t.Fatalf("stack top-K path: %+v", resp)
	}
	// k>1 must be able to return more than one refinement here.
	if len(resp.Queries) < 2 {
		t.Errorf("stack top-K returned %d queries", len(resp.Queries))
	}
	// And the satisfiable path at k>1:
	resp2, err := e.QueryTerms([]string{"online", "database"}, StrategyStack, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.NeedRefine || !resp2.Queries[0].IsOriginal {
		t.Fatalf("stack top-K satisfiable path: %+v", resp2)
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	e, _ := newEngine(t, nil)
	if _, err := e.QueryTerms([]string{"online"}, Strategy(99), 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStackStrategyNoRefinementFound(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.QueryTerms([]string{"zzzz", "qqqq"}, StrategyStack, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine || len(resp.Queries) != 0 {
		t.Fatalf("hopeless stack query: %+v", resp)
	}
}
