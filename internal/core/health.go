package core

// Replica health states, as surfaced on /healthz. They live in core (the
// package every serving layer already depends on) so the HTTP server can
// type its replica table without importing the shard router.
const (
	// ReplicaHealthy: the replica serves reads and accepts routed writes.
	ReplicaHealthy = "healthy"
	// ReplicaBreakerOpen: consecutive scan errors tripped the circuit
	// breaker; the replica is held out of primary read selection until the
	// cooldown expires. Writes still route to it — the breaker is a read
	// availability device, not a consistency one.
	ReplicaBreakerOpen = "breaker-open"
	// ReplicaQuarantined: the replica's epoch lags its group (a routed
	// write failed on it). It serves no reads until epoch reconciliation
	// replays the missed WAL batches and it rejoins.
	ReplicaQuarantined = "quarantined"
)

// ReplicaStatus is one row of the /healthz replica table: the health of
// one replica of one shard.
type ReplicaStatus struct {
	Shard             int     `json:"shard"`
	Replica           int     `json:"replica"`
	State             string  `json:"state"`
	Epoch             uint64  `json:"epoch"`
	EpochLag          uint64  `json:"epoch_lag"`
	EWMAMillis        float64 `json:"ewma_ms"`
	ConsecutiveErrors int     `json:"consecutive_errors"`
	BreakerTrips      uint64  `json:"breaker_trips"`
}
