package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"xrefine/internal/kvstore"
	"xrefine/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// queryAllocs measures steady-state allocations of one uncached,
// untraced query against the given engine, issued on ctx.
func queryAllocs(t *testing.T, e *Engine, ctx context.Context) float64 {
	t.Helper()
	// Warm the lazy list loads so both engines measure the serving path,
	// not the first-touch index path.
	if _, err := e.QueryCtx(ctx, "online databse"); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(50, func() {
		if _, err := e.QueryCtx(ctx, "online databse"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMetricsAllocOverhead pins the cost of the always-on instrumentation:
// the metered no-explain query path may allocate at most 2 more times per
// query than an engine built with DisableMetrics. Untraced queries carry
// no spans, so counter bumps and the latency histogram are the only delta.
// The same bound must hold on the flight-recorder path: a request context
// carrying an unsampled ReqInfo (the steady-state serving shape — every
// request records admission events, almost none are trace-sampled) adds
// ring writes but no spans and no exemplar pins, so it gets no extra
// allocation allowance.
func TestMetricsAllocOverhead(t *testing.T) {
	on, _ := newEngine(t, nil)
	off, _ := newEngine(t, &Config{DisableMetrics: true})
	bg := context.Background()
	got, base := queryAllocs(t, on, bg), queryAllocs(t, off, bg)
	if got > base+2 {
		t.Errorf("instrumented query = %.1f allocs/op, disabled = %.1f; overhead %.1f exceeds 2",
			got, base, got-base)
	}
	ri := obs.NewReqInfo() // Sampled stays false: the non-sampled hot path
	flight := queryAllocs(t, on, obs.WithReqInfo(bg, ri))
	if flight > base+2 {
		t.Errorf("flight-armed unsampled query = %.1f allocs/op, disabled = %.1f; overhead %.1f exceeds 2",
			flight, base, flight-base)
	}
}

// TestEngineStatsFromRegistry: the legacy Stats() snapshot must keep
// working now that it reads the shared registry instead of private
// atomics.
func TestEngineStatsFromRegistry(t *testing.T) {
	e, _ := newEngine(t, nil)
	if _, err := e.Query("online databse"); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 1 || st.Refined != 1 {
		t.Errorf("Stats() = %+v, want Queries=1 Refined=1", st)
	}
	if e.Metrics() == nil {
		t.Error("Metrics() = nil on a default engine")
	}
}

// TestDisabledMetricsEngine: DisableMetrics must produce a fully working
// engine whose registry accessor reports nil and whose Stats are zero.
func TestDisabledMetricsEngine(t *testing.T) {
	e, _ := newEngine(t, &Config{DisableMetrics: true})
	resp, err := e.Query("online databse")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Error("typo query should need refinement")
	}
	if e.Metrics() != nil {
		t.Error("Metrics() should be nil with DisableMetrics")
	}
	if st := e.Stats(); st.Queries != 0 {
		t.Errorf("disabled engine Stats().Queries = %d, want 0", st.Queries)
	}
}

// scrubValues replaces every sample value in a Prometheus exposition with
// "V" so the golden pins names, labels, HELP and TYPE but not timings.
func scrubValues(text string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			b.WriteString(line)
		} else if i := strings.LastIndexByte(line, ' '); i >= 0 {
			b.WriteString(line[:i+1] + "V")
		} else {
			b.WriteString(line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPrometheusExpositionGolden locks the exposition's shape: every
// family name, HELP/TYPE declaration, label set and histogram bucket
// layout, with the (run-dependent) sample values scrubbed. Regenerate
// with `go test ./internal/core -run ExpositionGolden -update`.
func TestPrometheusExpositionGolden(t *testing.T) {
	// One refined query plus one degraded query so the labeled
	// degraded_total vec has a child and every engine counter is live.
	e, _ := newEngine(t, &Config{PostingBudget: 1})
	if _, err := e.Query("online databse"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("self-parse failed: %v\n%s", err, buf.String())
	}
	if fams := exp.Families(); len(fams) < 12 {
		t.Errorf("only %d families, want >= 12: %v", len(fams), fams)
	}

	got := scrubValues(buf.String())
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden; run with -update and review the diff\ngot:\n%s", got)
	}
}

// outlineSpans renders a span tree as an indented name outline —
// durations and attribute values vary run to run, names and nesting
// must not.
func outlineSpans(d *obs.SpanData, depth int, b *strings.Builder) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(d.Name)
	b.WriteByte('\n')
	for _, c := range d.Children {
		outlineSpans(c, depth+1, b)
	}
}

var workerSpan = regexp.MustCompile(`^(\s*)worker-\d+$`)

// TestTraceSpanTreeGolden pins the span taxonomy of a sequential traced
// query and checks the timing invariant: children are disjoint stages on
// the sequential path, so their durations must sum to no more than the
// root's.
func TestTraceSpanTreeGolden(t *testing.T) {
	e, _ := newEngine(t, &Config{Parallelism: 1})
	ctx, root := obs.NewTrace(context.Background(), "query")
	if _, err := e.QueryCtx(ctx, "online databse"); err != nil {
		t.Fatal(err)
	}
	root.End()
	d := root.Data()
	defer root.Release()

	var b strings.Builder
	outlineSpans(d, 0, &b)
	got := b.String()
	want := strings.TrimLeft(`
query
  tokenize
  prepare
  refine:partition
    load-lists
  rank
`, "\n")
	if got != want {
		t.Errorf("span outline = \n%s\nwant:\n%s", got, want)
	}

	var childSum int64
	for _, c := range d.Children {
		if c.DurationNS < 0 {
			t.Errorf("span %s has negative duration %d", c.Name, c.DurationNS)
		}
		childSum += c.DurationNS
	}
	if childSum > d.DurationNS {
		t.Errorf("children duration sum %d exceeds root %d", childSum, d.DurationNS)
	}

	var refineSpan *obs.SpanData
	for _, c := range d.Children {
		if strings.HasPrefix(c.Name, "refine:") {
			refineSpan = c
		}
	}
	if refineSpan == nil {
		t.Fatal("no refine span")
	}
	for _, attr := range []string{"partitions", "slca_calls", "rq_generated"} {
		if _, ok := refineSpan.Attrs[attr]; !ok {
			t.Errorf("refine span missing %q attr: %v", attr, refineSpan.Attrs)
		}
	}
}

// TestParallelTraceSpans: a traced parallel query emits one worker span
// per engaged worker under the refine span. Worker spans overlap in time,
// so only their count and naming are asserted.
func TestParallelTraceSpans(t *testing.T) {
	e, _ := newEngine(t, &Config{Parallelism: 2})
	ctx, root := obs.NewTrace(context.Background(), "query")
	if _, err := e.QueryCtx(ctx, "online databse"); err != nil {
		t.Fatal(err)
	}
	root.End()
	d := root.Data()
	defer root.Release()

	var refineSpan *obs.SpanData
	for _, c := range d.Children {
		if strings.HasPrefix(c.Name, "refine:") {
			refineSpan = c
		}
	}
	if refineSpan == nil {
		t.Fatalf("no refine span in %v", d)
	}
	workers, merges := 0, 0
	for _, c := range refineSpan.Children {
		switch {
		case workerSpan.MatchString(c.Name):
			workers++
		case c.Name == "merge":
			merges++
		}
	}
	// A tiny corpus may not engage >1 worker; when it does, the merge
	// span must be present too.
	if workers > 0 && merges != 1 {
		t.Errorf("refine span has %d worker spans but %d merge spans", workers, merges)
	}
}

// TestTracedQueriesRace drives concurrent traced parallel queries; run
// with -race this guards the cross-goroutine span accumulation
// (AddInt from SLCA workers) and the shared registry.
func TestTracedQueriesRace(t *testing.T) {
	e, _ := newEngine(t, &Config{Parallelism: 4})
	queries := []string{"online databse", "keyword search", "twig pattern", "skyline databse"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ctx, root := obs.NewTrace(context.Background(), "query")
				if _, err := e.QueryCtx(ctx, queries[(g+i)%len(queries)]); err != nil {
					t.Error(err)
				}
				root.End()
				if d := root.Data(); d.DurationNS < 0 {
					t.Errorf("negative root duration %d", d.DurationNS)
				}
				root.Release()
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParsePrometheus(&buf); err != nil {
		t.Fatalf("post-race exposition malformed: %v", err)
	}
	if st := e.Stats(); st.Queries != 40 {
		t.Errorf("Stats().Queries = %d, want 40", st.Queries)
	}
}

// TestStoreBackedKvstoreMetrics: engines opened from an index store must
// bridge the pager's operation counters into the registry, completing the
// layer coverage (engine/refine/slca/index/kvstore).
func TestStoreBackedKvstoreMetrics(t *testing.T) {
	e, _ := newEngine(t, nil)
	store := kvstore.NewMem()
	defer store.Close()
	if err := e.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	// SaveIndex leaves the decoded-page cache warm and PageReads counts
	// pager misses only; drop it so the query actually touches the pager.
	store.DropCaches()
	e2, err := Open(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Query("online databse"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e2.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool)
	for _, f := range exp.Families() {
		have[f] = true
	}
	for _, want := range []string{
		"xrefine_kvstore_page_reads_total",
		"xrefine_kvstore_page_writes_total",
		"xrefine_kvstore_checksum_failures_total",
		"xrefine_kvstore_faults_injected_total",
	} {
		if !have[want] {
			t.Errorf("store-backed engine missing family %s", want)
		}
	}
	var reads float64 = -1
	for _, s := range exp.Samples {
		if s.Name == "xrefine_kvstore_page_reads_total" {
			reads = s.Value
		}
	}
	if reads <= 0 {
		t.Errorf("kvstore page reads = %v, want > 0 after a store-backed query", reads)
	}
}

// TestQuerySecondsHistogram: the latency histogram must record every
// query exactly once, including cache hits.
func TestQuerySecondsHistogram(t *testing.T) {
	e, _ := newEngine(t, &Config{CacheSize: 8})
	for i := 0; i < 3; i++ {
		if _, err := e.Query("online databse"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range exp.Samples {
		if s.Name == "xrefine_engine_query_seconds_count" {
			if s.Value != 3 {
				t.Errorf("query_seconds_count = %v, want 3", s.Value)
			}
			return
		}
	}
	t.Error("no xrefine_engine_query_seconds_count sample")
}
