package core

import (
	"testing"

	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// FuzzQueryPipeline throws arbitrary query strings at a fixed engine: the
// whole pipeline (tokenizer, rule generation including BK-tree probes, DP,
// partition scan, ranking) must never panic, and every reported result
// must be non-root with a positive result count when NeedRefine is false.
func FuzzQueryPipeline(f *testing.F) {
	doc, err := xmltree.ParseString(`
<bib>
  <author><name>John Ben</name><publications>
    <paper><title>online database systems</title><year>2003</year></paper>
    <paper><title>efficient keyword search</title><year>2005</year></paper>
  </publications></author>
  <author><name>Mary Lee</name><publications>
    <paper><title>matching twig patterns</title><year>2006</year></paper>
  </publications></author>
</bib>`, nil)
	if err != nil {
		f.Fatal(err)
	}
	eng := NewFromDocument(doc, nil)
	f.Add("online database")
	f.Add("databse")
	f.Add("ONLINE, data-base!!")
	f.Add("日本語 query")
	f.Add("a b c d e f g h i j k l m n o p")
	f.Add("    ")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, q string) {
		terms := tokenize.Query(q)
		if len(terms) == 0 {
			return
		}
		if len(terms) > 8 {
			terms = terms[:8] // keyword queries; cap the DP width
		}
		for _, strat := range []Strategy{StrategyPartition, StrategyStack} {
			resp, err := eng.QueryTerms(terms, strat, 2)
			if err != nil {
				t.Fatalf("%v(%q): %v", strat, terms, err)
			}
			if !resp.NeedRefine && (len(resp.Queries) == 0 || len(resp.Queries[0].Results) == 0) {
				t.Fatalf("%v(%q): satisfied without results", strat, terms)
			}
			for _, rq := range resp.Queries {
				for _, m := range rq.Results {
					if len(m.ID) < 2 {
						t.Fatalf("%v(%q): root returned as result", strat, terms)
					}
				}
			}
		}
	})
}
