package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/testutil"
)

// TestCancelPromptAtEveryStage cancels a slow query mid-flight and
// requires a prompt return at every pipeline stage: the lazy index loads
// (made slow by injected read latency), the sequential partition walk, the
// parallel worker pool, the SLE exploration, the stack merge, and the
// SLCA computations they delegate to. Run under -race this also proves the
// cooperative aborts do not race with the worker pool or the index
// singleflight.
//
// Each "load-*" stage opens a fresh engine whose first query pays the
// lazily-loaded posting lists through a pager with injected latency, so
// the cancel lands during index IO; each "walk-*" stage warms the lists
// first, so the cancel lands in pure compute. A stage passes when the
// query returns within the grace window with either a complete response
// (the race was lost — fine) or context.Canceled; anything else — a hang,
// a different error, a panic — fails.
func TestCancelPromptAtEveryStage(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	builder := NewFromDocument(doc, nil)
	faults := &kvstore.Faults{}
	store := kvstore.NewMemWithFaults(faults)
	defer store.Close()
	if err := builder.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	// Every page read now costs 0.5ms, so list loads dominate the cold
	// queries and the 3ms cancel below lands mid-load.
	faults.ReadLatency = 500 * time.Microsecond

	terms := []string{"database", "query", "xml"}
	stages := []struct {
		name     string
		cfg      *Config
		strategy Strategy
		k        int
		warm     bool
	}{
		{"load-partition-seq", &Config{Parallelism: 1}, StrategyPartition, 3, false},
		{"load-partition-parallel", &Config{Parallelism: 4}, StrategyPartition, 3, false},
		{"load-sle", &Config{Parallelism: 1}, StrategySLE, 3, false},
		{"load-stack", &Config{Parallelism: 1}, StrategyStack, 1, false},
		{"walk-partition-seq", &Config{Parallelism: 1}, StrategyPartition, 3, true},
		{"walk-partition-parallel", &Config{Parallelism: 4}, StrategyPartition, 3, true},
		{"walk-sle", &Config{Parallelism: 1}, StrategySLE, 3, true},
		{"walk-stack", &Config{Parallelism: 1}, StrategyStack, 1, true},
		{"walk-stack-topk", &Config{Parallelism: 1}, StrategyStack, 3, true},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			store.DropCaches()
			eng, err := Open(store, st.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.warm {
				if _, err := eng.QueryTerms(terms, st.strategy, st.k); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			// Cancel only after the query has observably started (the
			// query counter bumps at QueryTermsCtx entry): a fixed sleep
			// here raced the goroutine on loaded machines, cancelling
			// before the query began and asserting nothing.
			base := eng.Stats().Queries
			go func() {
				_, err := eng.QueryTermsCtx(ctx, terms, st.strategy, st.k, 0)
				done <- err
			}()
			testutil.Eventually(t, 5*time.Second, func() bool {
				return eng.Stats().Queries > base
			}, "query goroutine never started")
			cancel()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want nil or context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("query did not return within 5s of cancellation")
			}
		})
	}
}
