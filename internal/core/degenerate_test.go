package core

import (
	"fmt"
	"strings"
	"testing"

	"xrefine/internal/narrow"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// Degenerate document shapes: the engine must answer (possibly with
// nothing) and never panic or loop.

func engineFor(t *testing.T, src string) *Engine {
	t.Helper()
	doc, err := xmltree.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewFromDocument(doc, nil)
}

func queryAll(t *testing.T, e *Engine, q string) {
	t.Helper()
	for _, strat := range []Strategy{StrategyPartition, StrategySLE, StrategyStack} {
		if _, err := e.QueryTerms(tokenize.Query(q), strat, 3); err != nil {
			t.Errorf("%v on %q: %v", strat, q, err)
		}
	}
}

func TestSingleNodeDocument(t *testing.T) {
	e := engineFor(t, `<only>word</only>`)
	queryAll(t, e, "word")
	queryAll(t, e, "wrd")
	queryAll(t, e, "missing")
	resp, err := e.Query("word")
	if err != nil {
		t.Fatal(err)
	}
	// The only node is the root: never meaningful, so even a matching
	// query needs refinement — and no refinement can help.
	if !resp.NeedRefine {
		t.Error("root-only match must be flagged (Definition 3.3 excludes the root)")
	}
}

func TestFlatWideDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "<e>w%d</e>", i%7)
	}
	b.WriteString("</r>")
	e := engineFor(t, b.String())
	queryAll(t, e, "w0 w1")
	queryAll(t, e, "w0 nope")
}

func TestDeepChainDocument(t *testing.T) {
	depth := 120
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "<d%d>", i)
	}
	b.WriteString("needle")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "</d%d>", i)
	}
	e := engineFor(t, b.String())
	queryAll(t, e, "needle")
	queryAll(t, e, "needel") // typo at depth
}

func TestSinglePartitionDocument(t *testing.T) {
	e := engineFor(t, `<r><only><a>alpha beta</a><b>gamma</b></only></r>`)
	queryAll(t, e, "alpha gamma")
	resp, err := e.Query("alpha gamma")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine {
		// alpha and gamma co-occur under <only>, which should be an
		// inferred target.
		t.Errorf("single-partition co-occurrence flagged: %+v", resp)
	}
}

func TestNumericOnlyDocument(t *testing.T) {
	e := engineFor(t, `<r><n><v>2003</v></n><n><v>2004</v></n></r>`)
	queryAll(t, e, "2003")
	queryAll(t, e, "20033")
}

func TestRepeatedTermEverywhere(t *testing.T) {
	// One term occurs in every node: ImpK clamps to zero, dependence is
	// saturated — ranking must stay finite.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50; i++ {
		b.WriteString("<e>same same</e>")
	}
	b.WriteString("</r>")
	e := engineFor(t, b.String())
	resp, err := e.QueryTerms([]string{"same", "asme"}, StrategyPartition, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range resp.Queries {
		if q.Score != q.Score || q.Score < 0 {
			t.Errorf("non-finite score %v for %v", q.Score, q.Keywords)
		}
	}
}

func TestNarrowOnDegenerate(t *testing.T) {
	e := engineFor(t, `<only>word</only>`)
	out, err := e.Narrow("word", &narrow.Options{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Root-only results are not meaningful, so nothing to narrow.
	if out.TooBroad {
		t.Errorf("degenerate narrow outcome: %+v", out)
	}
}

func TestUnicodeContent(t *testing.T) {
	// Non-ASCII tags and values flow through tokenization, indexing and
	// refinement (spelling correction is ASCII-gated by the stemmer but
	// exact/synonym matching is not).
	e := engineFor(t, `<библиотека>
  <книга><название>базы данных</название><год>2003</год></книга>
  <книга><название>поиск ключевых слов</название><год>2005</год></книга>
</библиотека>`)
	resp, err := e.Query("базы данных")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine || len(resp.Queries[0].Results) == 0 {
		t.Errorf("unicode query failed: %+v", resp)
	}
	// Deletion-based refinement still works for over-restriction.
	resp2, err := e.Query("базы данных поиск")
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.NeedRefine || len(resp2.Queries) == 0 {
		t.Errorf("unicode refinement failed: %+v", resp2)
	}
}

func TestMixedScriptQuery(t *testing.T) {
	e := engineFor(t, `<r><doc><t>xml データベース search</t></doc><doc><t>other words</t></doc></r>`)
	resp, err := e.Query("xml データベース")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine {
		t.Errorf("mixed-script co-occurrence flagged: %+v", resp)
	}
}
