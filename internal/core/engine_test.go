package core

import (
	"strings"
	"testing"

	"xrefine/internal/kvstore"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

// A small bibliography that exercises every refinement operation: synonyms
// (publication ~ inproceedings/article via the builtin lexicon), merging
// (key word -> keyword), splitting, spelling (databse -> database) and
// stemming (match -> matching).
const corpus = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings>
        <title>online database systems</title>
        <year>2003</year>
      </inproceedings>
      <inproceedings>
        <title>efficient keyword search</title>
        <year>2005</year>
      </inproceedings>
    </publications>
  </author>
  <author>
    <name>Mary Lee</name>
    <publications>
      <article>
        <title>matching twig patterns in database systems</title>
        <year>2006</year>
      </article>
      <inproceedings>
        <title>skyline computation</title>
        <year>2007</year>
      </inproceedings>
    </publications>
  </author>
</bib>`

func newEngine(t testing.TB, cfg *Config) (*Engine, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewFromDocument(doc, cfg), doc
}

func TestSatisfiableQueryNeedsNoRefinement(t *testing.T) {
	for _, strat := range []Strategy{StrategyPartition, StrategySLE, StrategyStack} {
		e, _ := newEngine(t, &Config{Strategy: strat})
		resp, err := e.Query("online database")
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if resp.NeedRefine {
			t.Fatalf("%v: satisfiable query flagged for refinement", strat)
		}
		if len(resp.Queries) != 1 || !resp.Queries[0].IsOriginal {
			t.Fatalf("%v: queries = %+v", strat, resp.Queries)
		}
		if len(resp.Queries[0].Results) == 0 {
			t.Fatalf("%v: no results for original query", strat)
		}
		if got := resp.Queries[0].Results[0].ID.String(); got != "0.0.1.0.0" {
			t.Errorf("%v: result = %s, want 0.0.1.0.0 (the title holding both terms)", strat, got)
		}
	}
}

func TestSpellingRefinement(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.Query("online databse")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("misspelled query not flagged")
	}
	if len(resp.Queries) == 0 {
		t.Fatal("no refinements offered")
	}
	best := resp.Queries[0]
	if strings.Join(best.Keywords, " ") != "database online" {
		t.Errorf("best refinement = %v", best.Keywords)
	}
	if best.DSim != 1 {
		t.Errorf("dSim = %v, want 1 (one edit)", best.DSim)
	}
	if len(best.Results) == 0 {
		t.Error("refinement has no results")
	}
}

func TestSynonymRefinementPaperExample1(t *testing.T) {
	// The paper's Example 1: {database, publication} where the data uses
	// inproceedings/article instead of "publication".
	e, _ := newEngine(t, nil)
	resp, err := e.Query("database publication")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("mismatched query not flagged")
	}
	found := false
	for _, q := range resp.Queries {
		kws := strings.Join(q.Keywords, " ")
		if kws == "database inproceedings" || kws == "article database" {
			found = true
			if len(q.Results) == 0 {
				t.Errorf("synonym refinement %v has no results", q.Keywords)
			}
		}
	}
	if !found {
		t.Errorf("no synonym-substituted refinement among %+v", resp.Queries)
	}
}

func TestMergeRefinement(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.Query("efficient key word search")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("expected refinement")
	}
	best := resp.Queries[0]
	if strings.Join(best.Keywords, " ") != "efficient keyword search" {
		t.Errorf("best = %v", best.Keywords)
	}
	if best.DSim != 1 {
		t.Errorf("dSim = %v", best.DSim)
	}
}

func TestStemmingRefinement(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.Query("match twig patterns")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Fatal("expected refinement")
	}
	var keys []string
	for _, q := range resp.Queries {
		keys = append(keys, strings.Join(q.Keywords, " "))
	}
	if !contains(keys, "matching twig") && !contains(keys, "matching patterns twig") && !contains(keys, "matching pattern twig") {
		t.Errorf("no stemming refinement in %v", keys)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestStrategiesAgreeOnBestDissimilarity(t *testing.T) {
	queries := []string{
		"online databse",
		"efficient key word search",
		"database publication",
		"skylinecomputation",
	}
	for _, q := range queries {
		var dsims []float64
		for _, strat := range []Strategy{StrategyPartition, StrategySLE, StrategyStack} {
			e, _ := newEngine(t, &Config{Strategy: strat})
			resp, err := e.Query(q)
			if err != nil {
				t.Fatalf("%s/%v: %v", q, strat, err)
			}
			if !resp.NeedRefine || len(resp.Queries) == 0 {
				t.Fatalf("%s/%v: unexpected outcome %+v", q, strat, resp)
			}
			min := resp.Queries[0].DSim
			for _, rq := range resp.Queries {
				if rq.DSim < min {
					min = rq.DSim
				}
			}
			dsims = append(dsims, min)
		}
		if dsims[0] != dsims[1] || dsims[1] != dsims[2] {
			t.Errorf("%s: best dSim disagrees across strategies: %v", q, dsims)
		}
	}
}

func TestTopKLimit(t *testing.T) {
	e, _ := newEngine(t, &Config{TopK: 1})
	resp, err := e.Query("database publication")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Queries) > 1 {
		t.Errorf("TopK=1 returned %d queries", len(resp.Queries))
	}
}

func TestRankingOrdersQueries(t *testing.T) {
	e, _ := newEngine(t, &Config{TopK: 5})
	resp, err := e.Query("database publication")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(resp.Queries); i++ {
		if resp.Queries[i-1].Score < resp.Queries[i].Score {
			t.Errorf("queries not sorted by score: %v then %v",
				resp.Queries[i-1].Score, resp.Queries[i].Score)
		}
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	e, _ := newEngine(t, nil)
	if _, err := e.Query("   ,, "); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := e.QueryTerms(nil, StrategyPartition, 3); err == nil {
		t.Error("nil terms accepted")
	}
}

func TestHopelessQuery(t *testing.T) {
	e, _ := newEngine(t, nil)
	resp, err := e.Query("zzzz qqqq xxxx")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NeedRefine {
		t.Error("hopeless query not flagged")
	}
	// No crash; possibly zero refinements.
}

func TestEngineFromSavedIndex(t *testing.T) {
	e, _ := newEngine(t, nil)
	store := kvstore.NewMem()
	defer store.Close()
	if err := e.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Query("online databse")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Query("online databse")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Queries) != len(r2.Queries) {
		t.Fatalf("saved/loaded engines disagree: %d vs %d queries", len(r1.Queries), len(r2.Queries))
	}
	for i := range r1.Queries {
		if strings.Join(r1.Queries[i].Keywords, " ") != strings.Join(r2.Queries[i].Keywords, " ") {
			t.Errorf("query %d keywords differ", i)
		}
		if len(r1.Queries[i].Results) != len(r2.Queries[i].Results) {
			t.Errorf("query %d result counts differ", i)
		}
	}
}

func TestSLCAConfigRespected(t *testing.T) {
	for _, algo := range []slca.Algorithm{slca.AlgoScanEager, slca.AlgoIndexedLookupEager, slca.AlgoStack, slca.AlgoMultiway} {
		e, _ := newEngine(t, &Config{SLCA: algo})
		resp, err := e.Query("online databse")
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(resp.Queries) == 0 || len(resp.Queries[0].Results) == 0 {
			t.Fatalf("%v: no results", algo)
		}
	}
}

func TestSnippet(t *testing.T) {
	e, doc := newEngine(t, nil)
	resp, err := e.Query("online database")
	if err != nil {
		t.Fatal(err)
	}
	m := resp.Queries[0].Results[0]
	s := Snippet(doc, m, 50)
	if !strings.Contains(s, "online database") {
		t.Errorf("snippet = %q", s)
	}
	bare := Snippet(nil, m, 50)
	if !strings.Contains(bare, m.ID.String()) {
		t.Errorf("bare snippet = %q", bare)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyPartition.String() != "partition" || StrategySLE.String() != "sle" ||
		StrategyStack.String() != "stack-refine" || Strategy(9).String() != "unknown" {
		t.Error("Strategy.String broken")
	}
}

func TestStreamEngineMatchesTreeEngine(t *testing.T) {
	tree, _ := newEngine(t, nil)
	streamed, err := NewFromXMLStream(strings.NewReader(corpus), nil)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Document() != nil {
		t.Error("stream engine should have no document")
	}
	for _, q := range []string{"online databse", "efficient key word search", "database publication"} {
		r1, err := tree.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := streamed.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Queries) != len(r2.Queries) {
			t.Fatalf("%q: %d vs %d queries", q, len(r1.Queries), len(r2.Queries))
		}
		for i := range r1.Queries {
			if strings.Join(r1.Queries[i].Keywords, " ") != strings.Join(r2.Queries[i].Keywords, " ") ||
				len(r1.Queries[i].Results) != len(r2.Queries[i].Results) {
				t.Fatalf("%q: query %d differs", q, i)
			}
		}
	}
}
