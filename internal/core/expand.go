package core

import (
	"xrefine/internal/refine"
	"xrefine/internal/searchfor"
)

// Result expansion in the spirit of XSeek (the paper's reference [5]): an
// SLCA can be an arbitrary interior node — a title, a year — while what
// the user wants to *see* is the enclosing entity. With ExpandResults set,
// every meaningful match is lifted to its closest search-for-typed
// ancestor-or-self and duplicates merge, so a query matching three fields
// of one paper returns that paper once.

// expandResults lifts matches to entity level. Matches whose type path
// passes through no candidate type (impossible for meaningful matches, but
// stay total) are kept as-is.
func expandResults(cands []searchfor.Candidate, matches []refine.Match) []refine.Match {
	if len(cands) == 0 || len(matches) == 0 {
		return matches
	}
	seen := map[string]bool{}
	out := make([]refine.Match, 0, len(matches))
	for _, m := range matches {
		best := -1 // depth of the deepest candidate type containing m
		for _, c := range cands {
			if c.Type.Depth > best && c.Type.Depth < len(m.ID) && m.Type.HasPrefix(c.Type) {
				best = c.Type.Depth
			}
		}
		lifted := m
		if best >= 0 {
			entityType, err := m.Type.AncestorAt(best)
			if err == nil {
				lifted = refine.Match{ID: m.ID[:best+1].Clone(), Type: entityType}
			}
		}
		key := lifted.ID.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, lifted)
	}
	return out
}

// expandResponse applies expansion to every query of a response in place.
func expandResponse(resp *Response) {
	for i := range resp.Queries {
		resp.Queries[i].Results = expandResults(resp.SearchFor, resp.Queries[i].Results)
	}
}
