package core

import (
	"strings"
	"testing"
)

func TestExpandResultsToEntity(t *testing.T) {
	// Two query terms hit two different fields of the same paper; raw
	// SLCA is the paper already, but a title-only match (single field)
	// is a title node — expansion lifts it to the paper entity.
	e, _ := newEngine(t, &Config{ExpandResults: true})
	resp, err := e.Query("online database")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine {
		t.Fatal("unexpected refinement")
	}
	res := resp.Queries[0].Results
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	// Raw SLCA was the title node 0.0.1.0.0; expansion must lift it to a
	// search-for-typed ancestor (author or publications here).
	if len(res[0].ID) >= 5 {
		t.Errorf("not lifted: %s (%s)", res[0].ID, res[0].Type.Path())
	}
	found := false
	for _, c := range resp.SearchFor {
		if c.Type == res[0].Type {
			found = true
		}
	}
	if !found {
		t.Errorf("lifted type %s is not a search-for candidate", res[0].Type.Path())
	}
}

func TestExpandResultsDeduplicates(t *testing.T) {
	// A document where one entity matches through two children: without
	// expansion two SLCAs, with expansion one entity.
	src := `<bib>
  <author><publications>
    <paper><title>alpha beta</title><note>alpha beta</note></paper>
  </publications></author>
  <author><publications>
    <paper><title>other words</title></paper>
  </publications></author>
</bib>`
	plain, err := NewFromXML(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := NewFromXML(strings.NewReader(src), &Config{ExpandResults: true})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Query("alpha beta")
	if err != nil {
		t.Fatal(err)
	}
	re, err := expanded.Query("alpha beta")
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Queries[0].Results) != 2 {
		t.Fatalf("plain results = %d, want 2 (title and note)", len(rp.Queries[0].Results))
	}
	if len(re.Queries[0].Results) != 1 {
		t.Fatalf("expanded results = %d, want 1 merged entity", len(re.Queries[0].Results))
	}
}

func TestExpandResultsNoCandidatesKeepsMatches(t *testing.T) {
	if got := expandResults(nil, nil); got != nil {
		t.Error("nil in, nil out expected")
	}
}

func TestComplete(t *testing.T) {
	e, _ := newEngine(t, nil)
	got := e.Complete("data", 5)
	if len(got) == 0 || got[0] != "database" {
		t.Errorf("Complete(data) = %v", got)
	}
	// completes the LAST token
	got2 := e.Complete("online dat", 5)
	if len(got2) == 0 || !strings.HasPrefix(got2[0], "dat") {
		t.Errorf("Complete(online dat) = %v", got2)
	}
	if e.Complete("   ", 5) != nil {
		t.Error("blank partial completed")
	}
	if e.Complete("zzzz", 5) != nil {
		t.Error("no-match prefix completed")
	}
	if got := e.Complete("s", 2); len(got) > 2 {
		t.Errorf("k ignored: %v", got)
	}
}
