// Package core assembles the XRefine engine — the paper's prototype system
// of the same name. An Engine owns a document index and answers keyword
// queries end-to-end: tokenize, derive the relevant refinement rules, infer
// the search-for node candidates, run one of the three refinement
// algorithms of Section VI (which simultaneously decide whether the query
// needs refinement, explore refined-query candidates, and produce their
// matching results in a single scan of the inverted lists), and finally
// rank refined queries with the model of Section IV.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xrefine/internal/index"
	"xrefine/internal/storage"
	"xrefine/internal/lexicon"
	"xrefine/internal/narrow"
	"xrefine/internal/obs"
	"xrefine/internal/rank"
	"xrefine/internal/refine"
	"xrefine/internal/rules"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/tokenize"
	"xrefine/internal/xmltree"
)

// Strategy selects the refinement algorithm.
type Strategy int

const (
	// StrategyPartition is Algorithm 2, the paper's best performer and
	// the default.
	StrategyPartition Strategy = iota
	// StrategySLE is Algorithm 3, short-list eager.
	StrategySLE
	// StrategyStack is Algorithm 1; it yields only the single optimal
	// refined query rather than a top-K list.
	StrategyStack
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case StrategyPartition:
		return "partition"
	case StrategySLE:
		return "sle"
	case StrategyStack:
		return "stack-refine"
	}
	return "unknown"
}

// Config tunes an Engine. The zero value works: builtin lexicon, default
// generator, default ranking model, scan-eager SLCA, partition strategy,
// top-3 refinements.
type Config struct {
	// Lexicon used for synonym/acronym rules; nil means lexicon.Builtin().
	Lexicon *lexicon.Lexicon
	// Rules configures rule generation; its Lexicon field is overridden
	// by the engine's.
	Rules rules.Generator
	// Rank is the ranking model; a zero model is replaced by
	// rank.Default().
	Rank rank.Model
	// SearchFor tunes search-for node inference.
	SearchFor searchfor.Options
	// SLCA picks the delegated SLCA algorithm.
	SLCA slca.Algorithm
	// Strategy picks the refinement algorithm.
	Strategy Strategy
	// TopK bounds the number of refined queries returned; 0 means 3.
	TopK int
	// CacheSize enables an LRU over complete responses when positive.
	// Cached responses are shared and must be treated as read-only.
	CacheSize int
	// ExpandResults lifts every match to its closest search-for-typed
	// ancestor (the entity), merging duplicates — XSeek-style display
	// granularity instead of raw SLCA nodes.
	ExpandResults bool
	// Parallelism bounds the worker goroutines the partition strategy
	// fans the document walk out to. 0 means runtime.GOMAXPROCS(0); 1
	// forces the exact sequential path. The parallel path returns
	// responses identical to the sequential one, so the value is a pure
	// performance knob.
	Parallelism int
	// Timeout bounds each query's wall-clock execution when positive.
	// Expiry does not fail the query: the exploration stops at the next
	// cooperative checkpoint and the response carries whatever was found,
	// flagged Degraded with reason "deadline". Zero means no deadline.
	Timeout time.Duration
	// PostingBudget caps the postings one query's exploration may consume
	// when positive — a deterministic work bound, unlike Timeout. Expiry
	// degrades the response the same way with reason "posting-budget".
	// Zero means unlimited.
	PostingBudget int
	// Metrics is the registry the engine registers its counters and
	// histograms on. Nil means the engine creates a private registry,
	// retrievable via Engine.Metrics(). Sharing one registry across an
	// engine and its HTTP server is the normal serving setup;
	// registration is idempotent so order does not matter.
	Metrics *obs.Registry
	// DisableMetrics runs the engine with no registry at all: every
	// metric handle is nil and each instrumentation point collapses to
	// a nil check. Engine.Stats then reports zeros. Intended for
	// benchmark baselines and the allocation-overhead guard.
	DisableMetrics bool
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.Lexicon == nil {
		out.Lexicon = lexicon.Builtin()
	}
	out.Rules.Lexicon = out.Lexicon
	if out.Rank == (rank.Model{}) {
		out.Rank = rank.Default()
	}
	if out.TopK <= 0 {
		out.TopK = 3
	}
	if out.Parallelism <= 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
	}
	return out
}

// epoch is one immutable snapshot of the engine's data: the index, the
// source document (nil for index-only engines) and the generation number.
// Queries load the pointer once and run entirely against that snapshot, so
// a concurrent Apply never changes data under a running query — it swaps
// in a new epoch that only later queries observe.
type epoch struct {
	ix  *index.Index
	doc *xmltree.Document
	gen uint64
}

// Engine is an XRefine instance bound to one indexed document.
type Engine struct {
	ep    atomic.Pointer[epoch]
	cfg   Config
	cache *queryCache // nil when caching is disabled

	// applyMu serializes writers (Apply and WAL replay). Readers never
	// take it — they pin an epoch snapshot instead.
	applyMu sync.Mutex
	// live is the durable-update state (store + WAL); nil for in-memory
	// engines, whose epochs advance without persistence. frozen marks a
	// store-backed engine opened without live support: Apply is refused
	// so the served state can never silently diverge from the store.
	live   *liveState
	frozen bool
	// store is the backing store for store-opened engines (read-only or
	// live); nil for in-memory construction. Held for storage-state
	// reporting only — ownership stays with the caller.
	store storage.Backend

	// reg is the metrics registry (nil when disabled); m holds the
	// registered handles. The registry is the single counter
	// implementation — EngineStats is a read-through snapshot of it.
	reg *obs.Registry
	m   engineMetrics
	// flight is the registry's always-on event ring (nil when metrics are
	// disabled): one query event per completed query, plus budget-expiry
	// and WAL-commit events, all stamped with the request's trace ID.
	flight *obs.FlightRecorder
}

// snapshot pins the current epoch. The returned value is immutable; every
// read within one query must go through the same snapshot.
func (e *Engine) snapshot() *epoch { return e.ep.Load() }

// Epoch returns the current index generation: 0 for a freshly built
// engine, incremented by every applied update batch. Engines opened from
// a store resume at the store's committed epoch.
func (e *Engine) Epoch() uint64 { return e.snapshot().gen }

// StoreStats reports the backing store's storage-engine snapshot. ok is
// false for purely in-memory engines, which have no store to report on.
func (e *Engine) StoreStats() (storage.Stats, bool) {
	if e.store == nil {
		return storage.Stats{}, false
	}
	return e.store.StorageStats(), true
}

// EngineStats is a snapshot of the engine's serving counters.
type EngineStats struct {
	// Queries counts QueryTerms invocations (including cache hits).
	Queries uint64
	// Refined counts responses that needed refinement.
	Refined uint64
	// CacheHits counts responses served from the LRU cache.
	CacheHits uint64
	// ParallelQueries counts queries whose partition walk actually ran on
	// the parallel pipeline (more than one worker goroutine).
	ParallelQueries uint64
	// WorkerRuns accumulates worker goroutines across parallel queries;
	// WorkerRuns/ParallelQueries is the average fan-out achieved.
	WorkerRuns uint64
	// Degraded counts responses returned partial because a deadline or
	// posting budget expired mid-query.
	Degraded uint64
	// Parallelism is the engine's configured worker bound.
	Parallelism int
}

// Stats returns the current counter snapshot, read from the metrics
// registry. Engines with DisableMetrics report zeros.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Queries:         e.m.queries.Value(),
		Refined:         e.m.refined.Value(),
		CacheHits:       e.m.cacheHits.Value(),
		ParallelQueries: e.m.parallel.Value(),
		WorkerRuns:      e.m.workerRuns.Value(),
		Degraded:        e.m.degraded.Sum(),
		Parallelism:     e.cfg.Parallelism,
	}
}

// Metrics returns the engine's registry — what /metrics exposes and the
// HTTP server registers its own metrics on. Nil when DisableMetrics.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// noteOutcome records one exploration's observables: parallel fan-out,
// partitions visited, candidate generation and pruning, and the SLCA work
// delegated.
func (e *Engine) noteOutcome(out *refine.TopKOutcome) {
	if out.Workers > 1 {
		e.m.parallel.Inc()
		e.m.workerRuns.Add(int64(out.Workers))
	}
	e.m.refinePartitions.Add(int64(out.Partitions))
	e.m.rqGenerated.Add(int64(out.RQGenerated))
	e.m.rqPruned.Add(int64(out.RQPruned))
	e.m.boundUpdates.Add(int64(out.BoundUpdates))
	e.m.slcaCalls.Add(int64(out.SLCACalls))
	e.m.slcaPostings.Add(out.SLCAPostings)
}

// NewFromIndex wraps an existing index. Engines built this way have no
// source document, so Narrow is unavailable.
func NewFromIndex(ix *index.Index, cfg *Config) *Engine {
	c := cfg.withDefaults()
	reg := c.Metrics
	if c.DisableMetrics {
		reg = obs.Disabled()
	} else if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{cfg: c, cache: newQueryCache(c.CacheSize), reg: reg, m: newEngineMetrics(reg), flight: reg.Flight()}
	e.ep.Store(&epoch{ix: ix})
	e.registerEpochMetrics(reg)
	return e
}

// NewFromDocument indexes a parsed document in memory and keeps the
// document for snippets and narrowing.
func NewFromDocument(doc *xmltree.Document, cfg *Config) *Engine {
	e := NewFromIndex(index.Build(doc), cfg)
	e.setDocument(doc)
	return e
}

// setDocument attaches doc to the current epoch; construction-time only,
// before the engine is shared.
func (e *Engine) setDocument(doc *xmltree.Document) {
	ep := *e.ep.Load()
	ep.doc = doc
	e.ep.Store(&ep)
}

// NewFromXML parses and indexes XML from r, keeping the document tree for
// snippets and narrowing.
func NewFromXML(r io.Reader, cfg *Config) (*Engine, error) {
	doc, err := xmltree.Parse(r, nil)
	if err != nil {
		return nil, err
	}
	return NewFromDocument(doc, cfg), nil
}

// NewFromXMLStream indexes XML from r without materializing the document
// tree — memory stays proportional to the index, which matters for
// corpora the size of the paper's DBLP dump. The resulting engine has no
// Document, so snippets and narrowing are unavailable.
func NewFromXMLStream(r io.Reader, cfg *Config) (*Engine, error) {
	ix, err := index.BuildStream(r, nil)
	if err != nil {
		return nil, err
	}
	return NewFromIndex(ix, cfg), nil
}

// Open loads an engine from an index file previously written with
// SaveIndex or SaveIndexWithDocument. When the store also carries the
// source document (SaveIndexWithDocument), it is restored so snippets and
// narrowing keep working. The store stays open for lazy posting-list
// loads; the caller owns closing it.
func Open(store storage.Backend, cfg *Config) (*Engine, error) {
	return openStore(store, nil, cfg)
}

// OpenShared is Open against a shared type registry: the store's persisted
// types intern into reg instead of a private registry (index.LoadInto), so
// several engines opened this way agree on type pointer identity. The
// shard router opens every shard of a corpus through here — the merged
// index and the cross-shard result merge both compare types by pointer.
func OpenShared(store storage.Backend, reg *xmltree.Registry, cfg *Config) (*Engine, error) {
	if reg == nil {
		return nil, errors.New("core: OpenShared needs a registry")
	}
	return openStore(store, reg, cfg)
}

func openStore(store storage.Backend, reg *xmltree.Registry, cfg *Config) (*Engine, error) {
	var ix *index.Index
	var err error
	if reg != nil {
		ix, err = index.LoadInto(store, reg)
	} else {
		ix, err = index.Load(store)
	}
	if err != nil {
		return nil, err
	}
	e := NewFromIndex(ix, cfg)
	e.store = store
	InstrumentStore(e.reg, store)
	// The document interns into the index's registry: types are compared
	// by pointer, and live updates graft nodes whose types must be the
	// index's own.
	doc, ok, err := xmltree.LoadDocumentInto(store, ix.Types)
	if err != nil {
		return nil, fmt.Errorf("core: restore document: %w", err)
	}
	ep := *e.ep.Load()
	if ok {
		ep.doc = doc
	}
	// Resume at the store's committed epoch so cache keys and WAL replay
	// line up across restarts.
	ep.gen = store.Epoch()
	e.ep.Store(&ep)
	e.frozen = true
	return e, nil
}

// SaveIndex persists the engine's index into a kvstore.
func (e *Engine) SaveIndex(store storage.Backend) error { return e.snapshot().ix.Save(store) }

// SaveIndexWithDocument persists the index plus the source document, so an
// engine opened from this store retains snippets and narrowing. It fails
// on engines that have no document (built from an index or a stream).
func (e *Engine) SaveIndexWithDocument(store storage.Backend) error {
	ep := e.snapshot()
	if ep.doc == nil {
		return errors.New("core: engine has no source document to save")
	}
	if err := xmltree.SaveDocument(ep.doc, store); err != nil {
		return err
	}
	return ep.ix.Save(store)
}

// Index exposes the underlying index (read-only by convention). Under
// live updates this is the current epoch's index; pin it once rather than
// calling repeatedly when consistency across reads matters.
func (e *Engine) Index() *index.Index { return e.snapshot().ix }

// Document returns the source document when the engine was built from one,
// or nil for engines loaded from an index store.
func (e *Engine) Document() *xmltree.Document { return e.snapshot().doc }

// Complete suggests up to k indexed terms starting with the last token of
// the partial query — search-as-you-type over the corpus vocabulary,
// most-frequent first.
func (e *Engine) Complete(partial string, k int) []string {
	terms := tokenize.Query(partial)
	if len(terms) == 0 {
		return nil
	}
	return e.snapshot().ix.CompleteByPrefix(terms[len(terms)-1], k)
}

// Narrow handles the opposite failure mode of refinement — the paper's
// stated future work: a query with *too many* meaningful results. It
// proposes narrowed queries (original keywords plus a discriminative
// co-occurring term each), verified to still have meaningful results.
// Engines loaded from an index store return narrow.ErrNeedsDocument.
func (e *Engine) Narrow(q string, opts *narrow.Options) (*narrow.Outcome, error) {
	terms := tokenize.Query(q)
	if len(terms) == 0 {
		return nil, errors.New("core: query has no keywords")
	}
	ep := e.snapshot()
	in, _, err := e.prepare(ep, terms)
	if err != nil {
		return nil, err
	}
	return narrow.Narrow(ep.doc, ep.ix, terms, in.Judge, e.cfg.SLCA, opts)
}

// RankedQuery is one entry of a response: a query (the original or a
// refinement) with its matching results.
type RankedQuery struct {
	// Keywords of the query, sorted.
	Keywords []string
	// DSim is dSim(Q, RQ); 0 for the original query.
	DSim float64
	// Score is the overall rank by Formula 10 (0 for the original:
	// the ranking model only compares refinements).
	Score float64
	// SimScore and DepScore are the two components of Score before the
	// α/β weighting — the similarity (Formula 6) and dependence
	// (Formula 9) parts, exposed for explanation UIs.
	SimScore, DepScore float64
	// IsOriginal marks the original query.
	IsOriginal bool
	// Steps explains how the original query was refined into this one
	// (deletions and rule applications, in order); empty for the
	// original.
	Steps []refine.Step
	// Results are the meaningful SLCA matches.
	Results []refine.Match
}

// Response is the engine's answer to one keyword query.
type Response struct {
	// Terms is the normalized original query.
	Terms []string
	// NeedRefine reports Definition 3.4: the original query had no
	// meaningful SLCA.
	NeedRefine bool
	// SearchFor lists the inferred search-for node candidates.
	SearchFor []searchfor.Candidate
	// Rules is the rule set that was derived for the query.
	Rules []rules.Rule
	// Queries holds the original query (when satisfiable) or the ranked
	// refined queries, best first.
	Queries []RankedQuery
	// Degraded reports that a deadline or posting budget expired before
	// the exploration finished: every result present is genuine, but the
	// walk covered only part of the document, so candidates (or better
	// refinements) may be missing. Degraded responses are never cached.
	Degraded bool
	// DegradedReason names the cause when Degraded: "deadline" or
	// "posting-budget" (the refine.Degraded* constants).
	DegradedReason string
}

// Query tokenizes and answers a raw keyword query with the configured
// strategy and K.
func (e *Engine) Query(q string) (*Response, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx is Query under a caller context: cancellation aborts the
// pipeline at its next cooperative checkpoint and returns the context
// error, while a deadline (from ctx or Config.Timeout, whichever fires
// first) degrades the response to the partial results found so far.
func (e *Engine) QueryCtx(ctx context.Context, q string) (*Response, error) {
	tsp := obs.SpanFromContext(ctx).StartChild("tokenize")
	terms := tokenize.Query(q)
	if tsp != nil {
		tsp.SetInt("terms", int64(len(terms)))
		tsp.End()
	}
	if len(terms) == 0 {
		return nil, errors.New("core: query has no keywords")
	}
	return e.QueryTermsCtx(ctx, terms, e.cfg.Strategy, e.cfg.TopK, 0)
}

// Prepare derives the per-query machinery — rule set, search-for
// candidates and refinement input — without running any algorithm. It is
// the shared front half of QueryTerms and Explore.
func (e *Engine) Prepare(terms []string) (refine.Input, []searchfor.Candidate, error) {
	return e.prepare(e.snapshot(), terms)
}

// prepare is Prepare pinned to one epoch, so a query whose front half
// races an Apply still reads rules, inference and lists from one
// consistent snapshot.
func (e *Engine) prepare(ep *epoch, terms []string) (refine.Input, []searchfor.Candidate, error) {
	rs, err := e.cfg.Rules.Generate(ep.ix, terms)
	if err != nil {
		return refine.Input{}, nil, fmt.Errorf("core: rule generation: %w", err)
	}
	// Search-for inference uses the query terms plus the rule-generated
	// keywords: for fully mismatched queries only the latter touch the
	// data at all.
	inferTerms := append(append([]string(nil), terms...), rs.NewKeywords(terms)...)
	cands := searchfor.Infer(ep.ix, inferTerms, &e.cfg.SearchFor)
	in := refine.Input{
		Index:       ep.ix,
		Query:       terms,
		Rules:       rs,
		Judge:       searchfor.NewJudge(cands),
		SLCA:        e.cfg.SLCA,
		Parallelism: e.cfg.Parallelism,
	}
	return in, cands, nil
}

// Explore runs the partition-based exploration and returns the raw top-2K
// candidate list before ranking — the hook the experiment harness uses to
// re-rank one exploration under several ranking-model variants (Tables IX
// and X).
func (e *Engine) Explore(terms []string, k int) (*refine.TopKOutcome, []searchfor.Candidate, error) {
	if len(terms) == 0 {
		return nil, nil, errors.New("core: query has no keywords")
	}
	in, cands, err := e.prepare(e.snapshot(), terms)
	if err != nil {
		return nil, nil, err
	}
	out, err := refine.PartitionTopK(in, k)
	if err != nil {
		return nil, nil, err
	}
	e.noteOutcome(out)
	return out, cands, nil
}

// QueryTerms answers a pre-tokenized query with an explicit strategy and K
// — the entry point the experiment harness uses.
func (e *Engine) QueryTerms(terms []string, strategy Strategy, k int) (*Response, error) {
	return e.QueryTermsParallel(terms, strategy, k, 0)
}

// QueryTermsParallel is QueryTerms with a per-query parallelism override
// for the partition strategy: 0 uses the engine's configured value, 1
// forces the sequential path, N fans the walk out to at most N workers.
// Responses are identical at every parallelism, so cached responses are
// shared across overrides.
func (e *Engine) QueryTermsParallel(terms []string, strategy Strategy, k, parallelism int) (*Response, error) {
	return e.QueryTermsCtx(context.Background(), terms, strategy, k, parallelism)
}

// QueryTermsCtx is the fully-general entry point: pre-tokenized query,
// explicit strategy, K and parallelism override, under a caller context.
// Config.Timeout (when set) is layered onto ctx here, so the effective
// deadline is the earlier of the two. An expired deadline or exhausted
// posting budget returns a partial response with Degraded set; an outright
// cancellation returns ctx.Err(). Degraded responses never enter the
// cache, so a later unconstrained query cannot be served a truncated
// answer as if it were complete.
func (e *Engine) QueryTermsCtx(ctx context.Context, terms []string, strategy Strategy, k, parallelism int) (*Response, error) {
	if len(terms) == 0 {
		return nil, errors.New("core: query has no keywords")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if k <= 0 {
		k = e.cfg.TopK
	}
	e.m.queries.Inc()
	start := time.Now()
	// Pin one epoch for the whole query: the cache key, rule generation,
	// exploration and ranking all read this snapshot, so a concurrent
	// Apply cannot mix generations within one response or serve a
	// pre-update response to a post-update query.
	ep := e.snapshot()
	e.m.pinnedQueries.Add(1)
	defer e.m.pinnedQueries.Add(-1)
	key := cacheKey(ep.gen, terms, strategy, k)
	if resp, ok := e.cache.get(key); ok {
		e.m.cacheHits.Inc()
		if resp.NeedRefine {
			e.m.refined.Inc()
		}
		if sp := obs.SpanFromContext(ctx); sp != nil {
			sp.SetInt("cache_hit", 1)
		}
		d := time.Since(start)
		e.flight.Record(obs.Event{Trace: obs.TraceIDFromContext(ctx), Kind: obs.EvQuery,
			Shard: -1, Replica: -1, DurNS: int64(d), N: int64(len(terms)), Note: "cache-hit"})
		e.m.querySeconds.Observe(d.Seconds())
		return resp, nil
	}
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	resp, err := e.queryUncached(ctx, ep, terms, strategy, k, parallelism)
	if err != nil {
		return nil, err
	}
	if e.cfg.ExpandResults {
		expandResponse(resp)
	}
	if resp.NeedRefine {
		e.m.refined.Inc()
	}
	if resp.Degraded {
		e.m.degraded.With(resp.DegradedReason).Inc()
		e.flight.Record(obs.Event{Trace: obs.TraceIDFromContext(ctx), Kind: obs.EvBudgetExpiry,
			Shard: -1, Replica: -1, Note: resp.DegradedReason})
	} else {
		// Only complete responses are cacheable: a degraded partial
		// answer must never satisfy a later query as if it were full.
		e.cache.put(key, resp)
	}
	d := time.Since(start)
	e.flight.Record(obs.Event{Trace: obs.TraceIDFromContext(ctx), Kind: obs.EvQuery,
		Shard: -1, Replica: -1, DurNS: int64(d), N: int64(len(terms))})
	e.m.querySeconds.Observe(d.Seconds())
	return resp, nil
}

// queryUncached runs the full pipeline against one pinned epoch.
// parallelism > 0 overrides the engine's configured partition-walk
// fan-out for this query.
func (e *Engine) queryUncached(ctx context.Context, ep *epoch, terms []string, strategy Strategy, k, parallelism int) (*Response, error) {
	root := obs.SpanFromContext(ctx)
	psp := root.StartChild("prepare")
	in, cands, err := e.prepare(ep, terms)
	psp.End()
	if err != nil {
		return nil, err
	}
	in.Budget = refine.NewBudget(ctx, e.cfg.PostingBudget)
	if parallelism > 0 {
		in.Parallelism = parallelism
	}
	var ssp *obs.Span
	if root != nil {
		ssp = root.StartChild("refine:" + strategy.String())
		in.Trace = ssp
	}
	rs := in.Rules
	resp := &Response{Terms: terms, SearchFor: cands, Rules: rs.Rules()}
	switch strategy {
	case StrategyStack:
		if k > 1 {
			// Top-K via the stack walk is an extension beyond the
			// paper's optimal-only Algorithm 1; see refine.StackTopK.
			out, err := refine.StackTopK(in, k)
			annotateRefineSpan(ssp, out)
			if err != nil {
				return nil, err
			}
			e.noteOutcome(out)
			return e.finishTopK(root, ep, resp, terms, out, k)
		}
		out, err := refine.Stack(in)
		ssp.End()
		if err != nil {
			return nil, err
		}
		resp.NeedRefine = out.NeedRefine
		resp.Degraded = out.Degraded
		resp.DegradedReason = out.DegradedReason
		if !out.NeedRefine {
			resp.Queries = []RankedQuery{{
				Keywords:   refine.NewRQ(terms, 0).Keywords,
				IsOriginal: true,
				Results:    out.Original,
			}}
			return resp, nil
		}
		if out.Found {
			score, err := e.cfg.Rank.Rank(ep.ix, cands, terms, out.Best.Keywords, out.Best.DSim)
			if err != nil {
				return nil, err
			}
			resp.Queries = []RankedQuery{{
				Keywords: out.Best.Keywords,
				DSim:     out.Best.DSim,
				Score:    score,
				Steps:    out.Best.Steps,
				Results:  out.BestResults,
			}}
		}
		return resp, nil
	case StrategySLE, StrategyPartition:
		var out *refine.TopKOutcome
		if strategy == StrategySLE {
			out, err = refine.ShortListEager(in, k)
		} else {
			out, err = refine.PartitionTopK(in, k)
		}
		annotateRefineSpan(ssp, out)
		if err != nil {
			return nil, err
		}
		e.noteOutcome(out)
		return e.finishTopK(root, ep, resp, terms, out, k)
	}
	return nil, fmt.Errorf("core: unknown strategy %d", strategy)
}

// annotateRefineSpan stamps a strategy span with the exploration's
// observables and ends it. Nil-safe on both arguments.
func annotateRefineSpan(sp *obs.Span, out *refine.TopKOutcome) {
	if sp != nil && out != nil {
		sp.SetInt("partitions", int64(out.Partitions))
		sp.SetInt("slca_calls", int64(out.SLCACalls))
		sp.SetInt("slca_postings", out.SLCAPostings)
		sp.SetInt("rq_generated", int64(out.RQGenerated))
		sp.SetInt("rq_pruned", int64(out.RQPruned))
		sp.SetInt("workers", int64(out.Workers))
		if out.Degraded {
			sp.SetStr("degraded", out.DegradedReason)
		}
	}
	sp.End()
}

// finishTopK interprets a top-K outcome: when the original query itself
// surfaced with results it needs no refinement; otherwise the candidates
// are ranked with Formula 10 and cut to K (the paper's line 19). trace is
// the query's root span (nil when untraced); ranking runs under a "rank"
// child.
func (e *Engine) finishTopK(trace *obs.Span, ep *epoch, resp *Response, terms []string, out *refine.TopKOutcome, k int) (*Response, error) {
	rsp := trace.StartChild("rank")
	defer rsp.End()
	if rsp != nil {
		rsp.SetInt("candidates", int64(len(out.Candidates)))
	}
	resp.Degraded = out.Degraded
	resp.DegradedReason = out.DegradedReason
	for _, it := range out.Candidates {
		if it.RQ.DSim == 0 && it.RQ.SameKeywords(terms) {
			resp.NeedRefine = false
			resp.Queries = []RankedQuery{{
				Keywords:   it.RQ.Keywords,
				IsOriginal: true,
				Results:    it.Results,
			}}
			return resp, nil
		}
	}
	resp.NeedRefine = true
	for _, it := range out.Candidates {
		sim := e.cfg.Rank.Similarity(ep.ix, resp.SearchFor, terms, it.RQ.Keywords, it.RQ.DSim)
		dep, err := e.cfg.Rank.Dependence(ep.ix, resp.SearchFor, it.RQ.Keywords)
		if err != nil {
			return nil, err
		}
		resp.Queries = append(resp.Queries, RankedQuery{
			Keywords: it.RQ.Keywords,
			DSim:     it.RQ.DSim,
			Score:    e.cfg.Rank.Alpha*sim + e.cfg.Rank.Beta*dep,
			SimScore: sim,
			DepScore: dep,
			Steps:    it.RQ.Steps,
			Results:  it.Results,
		})
	}
	sort.SliceStable(resp.Queries, func(i, j int) bool {
		if resp.Queries[i].Score != resp.Queries[j].Score {
			return resp.Queries[i].Score > resp.Queries[j].Score
		}
		return resp.Queries[i].DSim < resp.Queries[j].DSim
	})
	if len(resp.Queries) > k {
		resp.Queries = resp.Queries[:k]
	}
	return resp, nil
}

// NoteOutcome feeds one exploration outcome into the engine's metric
// counters — the hook the shard router uses so scatter-gather queries
// account on the meta engine exactly like local ones.
func (e *Engine) NoteOutcome(out *refine.TopKOutcome) { e.noteOutcome(out) }

// FinishTopK ranks an exploration outcome into resp against the engine's
// current snapshot — Formula 10, the original-query short-circuit and the
// cut to K, plus result expansion when configured — under a "rank" span of
// ctx's trace. It is the back half of queryUncached, exported for the
// shard router, whose exploration ran scatter-gather instead of through
// this engine.
func (e *Engine) FinishTopK(ctx context.Context, resp *Response, terms []string, out *refine.TopKOutcome, k int) (*Response, error) {
	if k <= 0 {
		k = e.cfg.TopK
	}
	resp, err := e.finishTopK(obs.SpanFromContext(ctx), e.snapshot(), resp, terms, out, k)
	if err != nil {
		return nil, err
	}
	if e.cfg.ExpandResults {
		expandResponse(resp)
	}
	return resp, nil
}

// Snippet renders a human-readable preview of a match against the source
// document. ok is false when the engine has no document (loaded from an
// index-only store) — the serving layer omits the snippet field then.
func (e *Engine) Snippet(m refine.Match, max int) (string, bool) {
	doc := e.snapshot().doc
	if doc == nil {
		return "", false
	}
	return Snippet(doc, m, max), true
}

// Snippet renders a human-readable preview of a match against the original
// document; engines loaded from an index file have no document and return
// the bare label.
func Snippet(doc *xmltree.Document, m refine.Match, max int) string {
	if doc != nil {
		if n, ok := doc.NodeByID(m.ID); ok {
			return n.Snippet(max)
		}
	}
	return fmt.Sprintf("%s:%s", m.Type.Tag, m.ID)
}
