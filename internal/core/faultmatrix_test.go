package core

import (
	"errors"
	"fmt"
	"testing"

	"xrefine/internal/datagen"
	"xrefine/internal/kvstore"
	"xrefine/internal/refine"
)

// TestFaultMatrix crosses storage failpoints with queries and budgets and
// requires every combination to land in exactly one of the allowed
// outcomes: a complete response, a correctly-flagged degraded response
// (budget configured), or a typed error rooted in kvstore.ErrInjected.
// Panics, hangs, and silently-wrong answers are the failures this matrix
// exists to catch. Each trial opens a fresh engine over dropped caches so
// the armed failpoint genuinely sits under the lazy index loads.
func TestFaultMatrix(t *testing.T) {
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	builder := NewFromDocument(doc, nil)
	faults := &kvstore.Faults{}
	store := kvstore.NewMemWithFaults(faults)
	defer store.Close()
	if err := builder.SaveIndex(store); err != nil {
		t.Fatal(err)
	}

	// Reference signatures from a clean engine: when a faulted trial does
	// return a complete response, it must be the correct one.
	queries := [][]string{
		{"database", "query"},
		{"databse", "quary"},
		{"keyword", "search", "xml"},
	}
	clean, err := Open(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		resp, err := clean.QueryTerms(q, StrategyPartition, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = responseSig(resp)
	}

	faultArms := []struct {
		name string
		arm  func()
	}{
		{"none", func() {}},
		{"read-fail-1", func() { faults.FailReads(1) }},
		{"read-fail-3", func() { faults.FailReads(3) }},
		{"read-fail-10", func() { faults.FailReads(10) }},
		{"read-fail-50", func() { faults.FailReads(50) }},
	}
	budgets := []struct {
		name string
		cfg  *Config
	}{
		{"unbounded", nil},
		{"posting-budget", &Config{PostingBudget: 40}},
	}
	// The matrix must actually visit all three outcome classes, or it
	// proves nothing.
	var sawComplete, sawDegraded, sawInjected int
	for _, fa := range faultArms {
		for _, bd := range budgets {
			for qi, q := range queries {
				t.Run(fmt.Sprintf("%s/%s/q%d", fa.name, bd.name, qi), func(t *testing.T) {
					defer func() {
						faults.Clear()
						if v := recover(); v != nil {
							t.Fatalf("panic: %v", v)
						}
					}()
					store.DropCaches()
					faults.Clear()
					fa.arm()
					eng, err := Open(store, bd.cfg)
					if err != nil {
						// The failpoint hit during engine open: must be
						// the typed injection error, cleanly wrapped.
						if !errors.Is(err, kvstore.ErrInjected) {
							t.Fatalf("open error not typed: %v", err)
						}
						sawInjected++
						return
					}
					resp, err := eng.QueryTerms(q, StrategyPartition, 3)
					if err != nil {
						if !errors.Is(err, kvstore.ErrInjected) {
							t.Fatalf("query error not typed: %v", err)
						}
						sawInjected++
						return
					}
					// A response came back: it must be internally valid.
					for _, rq := range resp.Queries {
						if len(rq.Keywords) == 0 {
							t.Fatal("response query with no keywords")
						}
						for _, m := range rq.Results {
							if m.ID == nil || m.Type == nil {
								t.Fatal("response result with nil ID or type")
							}
						}
					}
					switch {
					case resp.Degraded:
						if bd.cfg == nil {
							t.Fatal("degraded response without any budget configured")
						}
						if resp.DegradedReason != refine.DegradedPostings {
							t.Fatalf("DegradedReason = %q", resp.DegradedReason)
						}
						sawDegraded++
					default:
						// Complete response: must match the clean run
						// exactly — a fault may cost availability, never
						// correctness.
						if got := responseSig(resp); got != want[qi] {
							t.Fatalf("complete response diverged from clean run\ngot  %s\nwant %s", got, want[qi])
						}
						sawComplete++
					}
				})
			}
		}
	}
	if sawComplete == 0 || sawDegraded == 0 || sawInjected == 0 {
		t.Fatalf("matrix lost an outcome class: complete=%d degraded=%d injected=%d",
			sawComplete, sawDegraded, sawInjected)
	}
}
