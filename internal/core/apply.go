package core

import (
	"errors"
	"fmt"

	"xrefine/internal/storage"
	"xrefine/internal/mutate"
	"xrefine/internal/obs"
	"xrefine/internal/xmltree"
)

// This file is the engine half of live index maintenance. The update path
// composes internal/mutate's primitives into atomic epoch commits:
//
//	Stage (clone + delta)  →  WAL append  →  store commit  →  publish
//
// A batch is staged against the current epoch's document and index clone,
// durably logged, persisted inside one copy-on-write store commit (index
// delta, rewritten document stream and the bumped epoch number all land
// together), and only then published to readers with a single pointer
// swap. A crash at any point leaves either the old epoch (WAL record
// incomplete or store commit torn — both detected and discarded on open)
// or the new one (commit durable; the leftover WAL record is skipped
// because its sequence number is no longer ahead of the store's epoch).

// liveState is the durable half of a live engine: the backing store and
// the write-ahead log. Engines without it (in-memory construction) still
// accept Apply — epochs advance without persistence.
type liveState struct {
	store  storage.Backend
	wal    *mutate.WAL
	broken bool // a rollback failed; the open store is untrustworthy
}

// ErrReadOnly is returned by Apply on a store-backed engine that was
// opened without live-update support (Open rather than OpenLive): its
// published snapshot must never diverge from the store it serves.
var ErrReadOnly = errors.New("core: engine serves a read-only index snapshot; reopen with OpenLive to apply updates")

// ApplyResult reports one committed update batch.
type ApplyResult struct {
	// Epoch is the generation the batch produced.
	Epoch uint64 `json:"epoch"`
	// InsertOps and DeleteOps count the batch's operations by kind.
	InsertOps int `json:"insert_ops"`
	DeleteOps int `json:"delete_ops"`
	// Inserted and Deleted count document nodes added and removed.
	Inserted int `json:"nodes_inserted"`
	Deleted  int `json:"nodes_deleted"`
	// WALBytes is the size of the durably logged record (0 for in-memory
	// engines and for replayed batches, which were already logged).
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// Replayed marks a batch re-applied from the WAL during recovery.
	Replayed bool `json:"replayed,omitempty"`
}

// Apply stages, persists and publishes one update batch as the next
// epoch. The batch is atomic: any failing op rejects all of it and the
// engine keeps serving the current epoch. Queries already running keep
// their pinned snapshot; queries starting after Apply returns see the new
// one. Writers are serialized; readers are never blocked.
//
// On a live engine the batch is WAL-logged before the store commit, so a
// crash between the two replays it on the next OpenLive. In-memory
// engines (NewFromDocument and friends) update only the published epoch.
func (e *Engine) Apply(b *mutate.Batch) (*ApplyResult, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	return e.applyLocked(b, false)
}

// applyLocked runs one batch through the commit protocol. replay marks a
// batch re-read from the WAL: it is already durably logged, so the append
// and the post-commit log reset are skipped (later records still need
// scanning).
func (e *Engine) applyLocked(b *mutate.Batch, replay bool) (*ApplyResult, error) {
	if e.live == nil && e.frozen {
		return nil, ErrReadOnly
	}
	if e.live != nil && e.live.broken {
		return nil, errors.New("core: store left inconsistent by a failed rollback; reopen the engine")
	}
	cur := e.ep.Load()
	staged, err := mutate.Stage(cur.doc, cur.ix, b)
	if err != nil {
		return nil, err
	}
	next := cur.gen + 1
	res := &ApplyResult{
		Epoch:     next,
		InsertOps: staged.InsertOps,
		DeleteOps: staged.DeleteOps,
		Inserted:  staged.Inserted,
		Deleted:   staged.Deleted,
		Replayed:  replay,
	}
	if e.live != nil {
		if !replay {
			n, err := e.live.wal.Append(next, b.Encode())
			if err != nil {
				return nil, fmt.Errorf("core: wal append: %w", err)
			}
			res.WALBytes = n
			e.m.walBytes.Add(n)
		}
		if err := e.commitEpoch(staged, next); err != nil {
			return nil, err
		}
	}
	e.ep.Store(&epoch{ix: staged.Ix, doc: staged.Doc, gen: next})
	if e.live != nil && !replay {
		// Best-effort: a record that outlives its commit is harmless —
		// replay skips sequence numbers the store has already reached.
		_ = e.live.wal.Reset()
	}
	e.m.appliedBatches.Inc()
	e.m.appliedOps.With("insert").Add(int64(staged.InsertOps))
	e.m.appliedOps.With("delete").Add(int64(staged.DeleteOps))
	if e.live != nil {
		e.flight.Record(obs.Event{Kind: obs.EvWALCommit, Shard: -1, Replica: -1, N: int64(next)})
	}
	return res, nil
}

// commitEpoch persists one staged epoch inside a single store commit: the
// index delta, the rewritten document stream and the new epoch number.
// Any failure rolls the store back to the last committed epoch; if the
// rollback itself fails the live state is marked broken and every later
// Apply is refused.
func (e *Engine) commitEpoch(staged *mutate.StageResult, next uint64) error {
	s := e.live.store
	err := func() error {
		if err := staged.Mut.SaveDelta(s); err != nil {
			return err
		}
		lo, hi := xmltree.DocChunkBounds()
		if _, err := s.DeleteRange(lo, hi); err != nil {
			return err
		}
		if err := xmltree.SaveDocument(staged.Doc, s); err != nil {
			return err
		}
		if err := s.SetEpoch(next); err != nil {
			return err
		}
		return s.Commit()
	}()
	if err == nil {
		return nil
	}
	if rbErr := s.Rollback(); rbErr != nil {
		e.live.broken = true
		return fmt.Errorf("core: commit epoch %d: %w (rollback also failed: %v)", next, err, rbErr)
	}
	return fmt.Errorf("core: commit epoch %d: %w", next, err)
}

// Checkpoint folds the engine's durable state. The backing store
// checkpoints (the log engine seals its active segment, merges dead
// records away and writes hint files; the B+tree engine commits — its
// copy-on-write design reuses freed pages already) and the write-ahead
// log truncates: every batch it held is inside the store's committed
// state, so replaying it would be wasted work. After a checkpoint a
// reopen pays hint-file loads plus zero WAL replay — the property that
// bounds reopen time on a long-lived live store no matter how many
// epochs it has absorbed. No-op on engines without live state.
func (e *Engine) Checkpoint() error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.live == nil {
		return nil
	}
	if err := e.live.store.Checkpoint(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := e.live.wal.Reset(); err != nil {
		return fmt.Errorf("core: checkpoint: wal truncate: %w", err)
	}
	return nil
}

// OpenLive is Open plus live-update support: it attaches the write-ahead
// log at walPath (created if absent) and replays any batch the log holds
// beyond the store's committed epoch — the recovery path after a crash
// between WAL append and store commit. The store must carry the source
// document (written with SaveIndexWithDocument); updates mutate the tree,
// so index-only stores cannot be updated live. The caller still owns
// closing the store; the engine owns the WAL (Close releases it).
func OpenLive(store storage.Backend, walPath string, cfg *Config) (*Engine, error) {
	return openLive(store, walPath, nil, cfg)
}

// OpenLiveShared is OpenLive against a shared type registry (see
// OpenShared): the shard router opens live shards through here so fragment
// types minted by updates intern into the corpus-wide registry.
func OpenLiveShared(store storage.Backend, walPath string, reg *xmltree.Registry, cfg *Config) (*Engine, error) {
	if reg == nil {
		return nil, errors.New("core: OpenLiveShared needs a registry")
	}
	return openLive(store, walPath, reg, cfg)
}

func openLive(store storage.Backend, walPath string, reg *xmltree.Registry, cfg *Config) (*Engine, error) {
	e, err := openStore(store, reg, cfg)
	if err != nil {
		return nil, err
	}
	if e.Document() == nil {
		return nil, errors.New("core: live updates need the stored document (save with SaveIndexWithDocument)")
	}
	w, err := mutate.OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	e.live = &liveState{store: store, wal: w}
	e.frozen = false
	replayed := 0
	err = w.Replay(store.Epoch(), func(seq uint64, payload []byte) error {
		if want := e.Epoch() + 1; seq != want {
			return fmt.Errorf("core: wal replay: record for epoch %d, want %d", seq, want)
		}
		b, err := mutate.DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("core: wal replay: %w", err)
		}
		if _, err := e.applyLocked(b, true); err != nil {
			return fmt.Errorf("core: wal replay epoch %d: %w", seq, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		w.Close()
		e.live = nil
		e.frozen = true
		return nil, err
	}
	if w.Size() > 0 {
		if err := w.Reset(); err != nil {
			w.Close()
			e.live = nil
			e.frozen = true
			return nil, err
		}
	}
	e.m.replayedBatches.Add(int64(replayed))
	return e, nil
}

// Close releases the engine's write-ahead log, if any. The backing store
// stays open — the caller that passed it to OpenLive owns it. A closed
// live engine reverts to read-only snapshot semantics: Apply is refused.
func (e *Engine) Close() error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.live == nil {
		return nil
	}
	err := e.live.wal.Close()
	e.live = nil
	e.frozen = true
	return err
}

// UpdateStats is a snapshot of the engine's live-update state.
type UpdateStats struct {
	// Live reports whether the engine persists updates (OpenLive).
	Live bool
	// Epoch is the current published generation.
	Epoch uint64
	// WALSizeBytes is the current write-ahead log size (0 when idle:
	// the log is truncated after every commit).
	WALSizeBytes int64
	// AppliedBatches and AppliedOps count committed work since open.
	AppliedBatches uint64
	AppliedOps     uint64
	// ReplayedBatches counts WAL batches re-applied during recovery.
	ReplayedBatches uint64
	// PinnedQueries is the number of queries currently holding an epoch
	// snapshot.
	PinnedQueries int64
}

// UpdateStats returns the current live-update snapshot.
func (e *Engine) UpdateStats() UpdateStats {
	u := UpdateStats{
		Epoch:           e.Epoch(),
		AppliedBatches:  e.m.appliedBatches.Value(),
		AppliedOps:      e.m.appliedOps.Sum(),
		ReplayedBatches: e.m.replayedBatches.Value(),
		PinnedQueries:   e.m.pinnedQueries.Value(),
	}
	e.applyMu.Lock()
	if e.live != nil {
		u.Live = true
		u.WALSizeBytes = e.live.wal.Size()
	}
	e.applyMu.Unlock()
	return u
}
