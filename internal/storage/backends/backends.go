// Package backends dispatches storage.Backend construction by engine
// kind. It is the one package that imports both engines, keeping
// internal/storage itself a dependency-free leaf that either engine (and
// every consumer) can import.
package backends

import (
	"os"

	"xrefine/internal/kvstore"
	"xrefine/internal/logstore"
	"xrefine/internal/storage"
)

// Open opens (creating if writable and absent) the store at path with the
// named engine: a single file for the B+tree, a segment directory for the
// log engine.
func Open(kind storage.Kind, path string, opts *storage.Options) (storage.Backend, error) {
	var o storage.Options
	if opts != nil {
		o = *opts
	}
	switch kind {
	case storage.KindLog:
		return logstore.Open(path, &logstore.Options{
			ReadOnly:      o.ReadOnly,
			Faults:        o.Faults,
			SegmentTarget: o.SegmentTarget,
			NoAutoCompact: o.NoAutoCompact,
			IgnoreHints:   o.IgnoreHints,
		})
	default:
		return kvstore.Open(path, &kvstore.Options{
			ReadOnly:  o.ReadOnly,
			CacheSize: o.CacheSize,
			Faults:    o.Faults,
		})
	}
}

// Detect sniffs the engine kind of an existing store path: a directory is
// a log store, a file is a B+tree store. The error is the Stat error for
// a missing path.
func Detect(path string) (storage.Kind, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if st.IsDir() {
		return storage.KindLog, nil
	}
	return storage.KindBTree, nil
}

// NewMem returns an in-memory backend (always the B+tree engine; the log
// engine is file-backed by design).
func NewMem() storage.Backend { return kvstore.NewMem() }
