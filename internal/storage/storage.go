// Package storage defines the pluggable storage-engine contract the index
// persistence layers write against. Two engines implement it: the B+tree
// kvstore (internal/kvstore, the original backend) and the Bitcask-style
// log-structured store (internal/logstore). Everything above this
// interface — index chunk persistence, document streams, live-update epoch
// commits, shard manifests — is backend-agnostic, and the conformance
// suites assert byte-identical query responses across engines.
//
// The package is a leaf: it depends on nothing in the repository, so both
// engines (and every consumer) can import it without cycles. The
// kind-dispatching constructors live in internal/storage/backends, which
// imports both engines.
package storage

import "os"

// Kind names a storage engine.
type Kind string

// The built-in engine kinds.
const (
	// KindBTree is the page-based copy-on-write B+tree (internal/kvstore):
	// one file, CRC-trailed pages, dual meta slots, ordered keys native.
	KindBTree Kind = "btree"
	// KindLog is the Bitcask-style log-structured engine
	// (internal/logstore): a directory of append-only CRC-framed segment
	// files, an in-memory keydir, background compaction and hint files
	// for millisecond cold starts.
	KindLog Kind = "log"
)

// ParseKind validates a -backend flag value. The empty string means the
// default engine (btree), keeping every pre-flag invocation working.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindBTree:
		return KindBTree, nil
	case KindLog:
		return KindLog, nil
	}
	return "", &UnknownKindError{Value: s}
}

// BackendEnv is the environment variable naming the engine used when a
// caller does not pick one explicitly. The CI backend matrix sets it to
// run backend-agnostic suites (shard differential, fault matrices)
// against the log engine without threading a flag through every helper.
const BackendEnv = "XREFINE_BACKEND"

// DefaultKind returns the engine kind to use when none was specified:
// the BackendEnv override when set and valid, otherwise the B+tree.
func DefaultKind() Kind {
	if k, err := ParseKind(os.Getenv(BackendEnv)); err == nil {
		return k
	}
	return KindBTree
}

// UnknownKindError reports an unrecognized backend name.
type UnknownKindError struct{ Value string }

func (e *UnknownKindError) Error() string {
	return "storage: unknown backend " + e.Value + " (want btree or log)"
}

// Backend is the storage contract shared by every engine. The semantics
// mirror the original kvstore API so the B+tree store satisfies it as-is:
//
//   - Put/Delete stage mutations that become durable only at Commit; reads
//     observe staged state immediately (read-your-writes inside a batch).
//   - Commit persists the staged batch atomically: after a crash, a store
//     reopens at the last committed state — never a partial batch.
//   - Rollback discards the staged batch and restores the last committed
//     state in memory.
//   - Range iterates keys in ascending byte order over [lo, hi); nil hi
//     means "to the end". The callback must not mutate the store.
//   - SetEpoch stages an application epoch published atomically with the
//     next Commit — the hook the live-update engine uses to tie a
//     committed state to its WAL position.
//
// Implementations must support concurrent readers (Get/Range) with writes
// serialized by the caller or internally.
type Backend interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool, error)
	// Put stages value under key, replacing any previous value.
	Put(key, value []byte) error
	// Delete stages removal of key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// DeleteRange stages removal of every key in [lo, hi), returning how
	// many existed.
	DeleteRange(lo, hi []byte) (int, error)
	// Range calls fn for every key in [lo, hi) in ascending order; nil hi
	// means "to the end". Iteration stops early when fn returns false.
	Range(lo, hi []byte, fn func(k, v []byte) bool) error
	// Commit atomically persists the staged batch.
	Commit() error
	// Rollback discards the staged batch, restoring the committed state.
	Rollback() error
	// Sync forces buffered writes to stable storage without publishing a
	// new commit.
	Sync() error
	// Checkpoint compacts the store's durable state: the log engine seals
	// the active segment, merges dead records away and writes hint files;
	// the B+tree engine commits (its copy-on-write design reuses freed
	// pages, so there is nothing further to fold). After a successful
	// checkpoint a reopen pays only the compacted state, which is what
	// lets the embedding layer truncate any replayed WAL prefix.
	Checkpoint() error
	// Epoch returns the application epoch of the last commit (or staged
	// by SetEpoch since).
	Epoch() uint64
	// SetEpoch stages an application epoch for the next Commit.
	SetEpoch(e uint64) error
	// Len returns the number of stored keys.
	Len() int
	// MaxKV returns the largest key+value payload the store accepts.
	MaxKV() int
	// DropCaches evicts clean cached state, forcing subsequent reads back
	// to disk — for memory-pressure relief and fault-injection tests.
	DropCaches()
	// Kind names the engine.
	Kind() Kind
	// StorageStats returns the engine's physical statistics.
	StorageStats() Stats
	// Close releases the store, committing pending changes when writable.
	Close() error
}

// Stats describes the physical state of a store. Generic fields are always
// set; the engine-specific blocks are zero for the other engine.
type Stats struct {
	// Kind names the engine that produced the snapshot.
	Kind Kind `json:"kind"`
	// Keys is the number of stored key-value pairs.
	Keys int `json:"keys"`
	// DiskBytes is the total on-disk footprint (pages or segment files).
	DiskBytes int64 `json:"disk_bytes"`
	// Txid is the last committed transaction sequence number.
	Txid uint64 `json:"txid"`
	// Epoch is the application epoch of the last commit.
	Epoch uint64 `json:"epoch"`

	// B+tree engine (zero for the log engine).

	// Pages and FreePages count allocated and reusable pages.
	Pages     int `json:"pages,omitempty"`
	FreePages int `json:"free_pages,omitempty"`
	// PageSize is the fixed page size in bytes.
	PageSize int `json:"page_size,omitempty"`

	// Log engine (zero for the B+tree engine).

	// Segments is the number of data files (sealed + active).
	Segments int `json:"segments,omitempty"`
	// LiveRecords/LiveBytes cover records the keydir still references;
	// DeadRecords/DeadBytes cover superseded records, tombstones and
	// commit frames awaiting compaction. DiskBytes = LiveBytes+DeadBytes.
	LiveRecords int64 `json:"live_records,omitempty"`
	LiveBytes   int64 `json:"live_bytes,omitempty"`
	DeadRecords int64 `json:"dead_records,omitempty"`
	DeadBytes   int64 `json:"dead_bytes,omitempty"`
	// KeydirEntries and KeydirBytes size the in-memory key directory
	// (entries, and resident key bytes plus per-entry overhead).
	KeydirEntries int   `json:"keydir_entries,omitempty"`
	KeydirBytes   int64 `json:"keydir_bytes,omitempty"`
	// Compactions counts completed merge passes since open.
	Compactions int64 `json:"compactions,omitempty"`
	// HintLoads and ScanLoads split cold-start segment loads by path:
	// hint-file fast path vs full data-file replay.
	HintLoads int `json:"hint_loads,omitempty"`
	ScanLoads int `json:"scan_loads,omitempty"`
}

// Amplification returns the on-disk amplification factor: total disk bytes
// over live bytes. 1.0 means no dead weight; the compaction policy holds
// the log engine under 2.0. Returns 0 when live bytes are unknown/zero.
func (s Stats) Amplification() float64 {
	if s.LiveBytes <= 0 {
		return 0
	}
	return float64(s.DiskBytes) / float64(s.LiveBytes)
}

// Options configure opening a backend through storage/backends.Open. The
// engine-specific knobs are ignored by the other engine.
type Options struct {
	// ReadOnly opens the store without write access.
	ReadOnly bool
	// Faults, when non-nil, interposes the fault-injection harness on the
	// engine's IO paths — page reads/writes for the B+tree, record and
	// hint-file IO for the log engine.
	Faults *Faults

	// CacheSize bounds the B+tree's decoded-page cache (0 = default).
	CacheSize int

	// SegmentTarget is the log engine's active-segment rotation threshold
	// in bytes (0 = default 4 MiB).
	SegmentTarget int64
	// NoAutoCompact disables the log engine's post-commit background
	// compaction trigger; Compact/Checkpoint still work when called.
	NoAutoCompact bool
	// IgnoreHints makes the log engine replay every data file on open even
	// when valid hint files exist — the cold-start benchmark baseline.
	IgnoreHints bool
}
