package storage

import (
	"errors"
	"math"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error produced by an armed failpoint.
// Callers asserting on fault-injection outcomes test with errors.Is.
var ErrInjected = errors.New("storage: injected fault")

// Faults is a fault-injection harness for a storage engine's IO layer. It
// began life wrapping the B+tree pager (internal/kvstore) and now lives at
// the backend interface so the same fault matrices run against every
// engine: the B+tree routes page reads/writes through it, the log engine
// routes record appends, record preads and hint-file writes. One Faults
// value drives one store; all counters and triggers are safe for
// concurrent use, matching the engines' concurrent-reader contract.
//
// Failpoints count down: FailReads(3) lets two reads through and fails the
// third and every read after it, until Clear. Torn writes are different —
// the nth write persists only the first half of its payload and then
// reports success, exactly the silent half-write a crash mid-commit leaves
// behind; the corruption must be caught later by the page or record CRC,
// not by the writer.
//
// Alongside the deterministic failpoints there are probabilistic per-op
// modes for soak-style chaos: SetErrorRate makes every read and write fail
// independently with probability p (a "flaky disk"), and SetJitter adds a
// uniformly random latency from a range to every operation (a "slow,
// erratic disk"). Both draw from a seeded lock-free xorshift generator, so
// a run is reproducible given the same seed and operation order.
type Faults struct {
	// ReadLatency and WriteLatency are added to every read/write — the
	// "slow disk" failpoint. Set before use; not synchronized.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	failRead  atomic.Int64 // countdown; 0 = disarmed
	failWrite atomic.Int64
	tornWrite atomic.Int64

	errorRate atomic.Uint64 // math.Float64bits of p; 0 = disarmed
	jitterMin atomic.Int64  // ns
	jitterMax atomic.Int64  // ns; 0 = disarmed
	rng       atomic.Uint64 // xorshift64 state; 0 = unseeded

	reads    atomic.Int64
	writes   atomic.Int64
	injected atomic.Int64
}

// FailReads arms the read failpoint: the nth read from now (1 = the very
// next) and every read after it fail with ErrInjected.
func (f *Faults) FailReads(n int64) { f.failRead.Store(n) }

// FailWrites arms the write failpoint symmetrically to FailReads.
func (f *Faults) FailWrites(n int64) { f.failWrite.Store(n) }

// TornWrite arms the torn-write failpoint: the nth write from now persists
// only the first half of its payload and reports success.
func (f *Faults) TornWrite(n int64) { f.tornWrite.Store(n) }

// SetErrorRate arms the probabilistic failpoint: every read and write
// independently fails with ErrInjected with probability p in [0, 1]. A
// flaky replica is one flag: p = 0.05 makes one IO in twenty fail while
// the rest proceed normally. 0 disarms.
func (f *Faults) SetErrorRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.errorRate.Store(math.Float64bits(p))
}

// SetJitter arms the latency-jitter failpoint: every read and write sleeps
// an extra uniformly random duration in [min, max], on top of any fixed
// ReadLatency/WriteLatency. SetJitter(0, 0) disarms.
func (f *Faults) SetJitter(min, max time.Duration) {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	f.jitterMin.Store(int64(min))
	f.jitterMax.Store(int64(max))
}

// Seed fixes the probabilistic modes' random stream. Unseeded Faults use a
// fixed default, so two identical runs inject identically.
func (f *Faults) Seed(seed uint64) {
	if seed == 0 {
		seed = defaultFaultSeed
	}
	f.rng.Store(seed)
}

// Clear disarms every failpoint, deterministic and probabilistic; latency
// fields are left as set.
func (f *Faults) Clear() {
	f.failRead.Store(0)
	f.failWrite.Store(0)
	f.tornWrite.Store(0)
	f.errorRate.Store(0)
	f.jitterMin.Store(0)
	f.jitterMax.Store(0)
}

// Reads returns the number of reads that reached the engine's IO layer.
func (f *Faults) Reads() int64 { return f.reads.Load() }

// Writes returns the number of writes that reached the engine's IO layer.
func (f *Faults) Writes() int64 { return f.writes.Load() }

// Injected returns the number of operations a failpoint disrupted
// (failed reads/writes and torn writes).
func (f *Faults) Injected() int64 { return f.injected.Load() }

// OnRead is the engine-side read hook: it applies the armed latency and
// jitter, counts the operation, and returns ErrInjected when the read
// failpoint (deterministic or probabilistic) fires. Engines call it before
// every IO-layer read and wrap the returned error with their own context.
func (f *Faults) OnRead() error {
	if f.ReadLatency > 0 {
		time.Sleep(f.ReadLatency)
	}
	f.jitter()
	f.reads.Add(1)
	if fire(&f.failRead) || f.flaky() {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}

// OnWrite is the engine-side write hook: it applies the armed latency and
// jitter, counts the operation, and returns the bytes the engine should
// persist. A failed write returns ErrInjected. A torn write returns only
// the first half of data with a nil error — the engine must persist that
// prefix and report success to its caller, modeling the silent half-write
// a crash leaves behind. Tearing is one-shot; later writes heal.
func (f *Faults) OnWrite(data []byte) ([]byte, error) {
	if f.WriteLatency > 0 {
		time.Sleep(f.WriteLatency)
	}
	f.jitter()
	f.writes.Add(1)
	if fire(&f.failWrite) || f.flaky() {
		f.injected.Add(1)
		return nil, ErrInjected
	}
	if fire(&f.tornWrite) {
		f.injected.Add(1)
		f.tornWrite.Store(0) // tearing is one-shot; later writes heal
		return data[:len(data)/2], nil
	}
	return data, nil
}

// defaultFaultSeed is the xorshift state of unseeded Faults — any odd
// 64-bit constant with good bit mixing works.
const defaultFaultSeed = 0x9E3779B97F4A7C15

// next64 draws the next value of the lock-free xorshift64 stream.
func (f *Faults) next64() uint64 {
	for {
		old := f.rng.Load()
		x := old
		if x == 0 {
			x = defaultFaultSeed
		}
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if f.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// chance reports true with probability p.
func (f *Faults) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	// Top 53 bits give a uniform float in [0, 1).
	return float64(f.next64()>>11)/(1<<53) < p
}

// jitter sleeps the armed random latency, if any.
func (f *Faults) jitter() {
	max := f.jitterMax.Load()
	if max <= 0 {
		return
	}
	min := f.jitterMin.Load()
	d := min
	if span := max - min; span > 0 {
		d += int64(f.next64() % uint64(span+1))
	}
	time.Sleep(time.Duration(d))
}

// flaky reports whether the probabilistic error failpoint fires for this
// operation.
func (f *Faults) flaky() bool {
	bits := f.errorRate.Load()
	if bits == 0 {
		return false
	}
	return f.chance(math.Float64frombits(bits))
}

// fire decrements a countdown and reports whether the failpoint triggers
// for this operation. A countdown at 1 trips and stays tripped (sticky);
// 0 means disarmed.
func fire(c *atomic.Int64) bool {
	for {
		v := c.Load()
		switch {
		case v == 0:
			return false
		case v == 1:
			return true // sticky: keep failing until Clear
		case c.CompareAndSwap(v, v-1):
			return false
		}
	}
}
