// Package mutate implements live index maintenance: a write-ahead log of
// subtree insert/delete batches, staging of a batch against the current
// epoch's document and index (via xmltree.Clone/Graft/Detach and
// index.Mutator), and replay of the log after a crash. The engine layer
// composes these into atomic epoch commits; this package knows nothing
// about epochs beyond the WAL sequence numbers it is handed.
package mutate

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"xrefine/internal/dewey"
)

// OpKind discriminates update operations.
type OpKind uint8

const (
	// OpInsert grafts an XML fragment as the last child of a parent node.
	OpInsert OpKind = 1
	// OpDelete detaches the subtree rooted at a target node.
	OpDelete OpKind = 2
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one update operation. Insert ops carry Parent and XML; delete ops
// carry Target.
type Op struct {
	Kind   OpKind
	Parent dewey.ID // insert: node receiving the fragment as last child
	Target dewey.ID // delete: root of the subtree to remove
	XML    string   // insert: the fragment document
}

// Batch is the unit of atomicity: all ops apply in order inside one epoch
// commit, or none do.
type Batch struct {
	Ops []Op `json:"ops"`
}

// Encode serializes the batch into the WAL payload format: a varint op
// count, then per op a kind byte, the varint-length-prefixed Dewey label
// (parent or target), and the varint-length-prefixed fragment XML.
func (b *Batch) Encode() []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		out = append(out, byte(op.Kind))
		label := op.Parent
		if op.Kind == OpDelete {
			label = op.Target
		}
		lb := label.Bytes()
		out = binary.AppendUvarint(out, uint64(len(lb)))
		out = append(out, lb...)
		out = binary.AppendUvarint(out, uint64(len(op.XML)))
		out = append(out, op.XML...)
	}
	return out
}

// DecodeBatch parses a WAL payload written by Encode.
func DecodeBatch(p []byte) (*Batch, error) {
	r := newByteReader(p)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("mutate: batch header: %w", err)
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("mutate: implausible op count %d", n)
	}
	b := &Batch{Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("mutate: op %d kind: %w", i, err)
		}
		labelLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		lb, err := r.take(int(labelLen))
		if err != nil {
			return nil, fmt.Errorf("mutate: op %d label: %w", i, err)
		}
		label, _, err := dewey.FromBytes(lb)
		if err != nil {
			return nil, fmt.Errorf("mutate: op %d label: %w", i, err)
		}
		xmlLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		xb, err := r.take(int(xmlLen))
		if err != nil {
			return nil, fmt.Errorf("mutate: op %d xml: %w", i, err)
		}
		op := Op{Kind: OpKind(kind), XML: string(xb)}
		switch op.Kind {
		case OpInsert:
			op.Parent = label
		case OpDelete:
			op.Target = label
		default:
			return nil, fmt.Errorf("mutate: op %d has unknown kind %d", i, kind)
		}
		b.Ops = append(b.Ops, op)
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("mutate: %d trailing bytes in batch", r.len())
	}
	return b, nil
}

// byteReader is a positioned reader over a byte slice with bulk take.
type byteReader struct {
	p   []byte
	pos int
}

func newByteReader(p []byte) *byteReader { return &byteReader{p: p} }

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.p) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.p[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.p) {
		return nil, io.ErrUnexpectedEOF
	}
	b := r.p[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *byteReader) len() int { return len(r.p) - r.pos }

// opJSON is the wire form of Op:
//
//	{"op":"insert","parent":"0.1","xml":"<paper>...</paper>"}
//	{"op":"delete","target":"0.2"}
type opJSON struct {
	Op     string `json:"op"`
	Parent string `json:"parent,omitempty"`
	Target string `json:"target,omitempty"`
	XML    string `json:"xml,omitempty"`
}

// MarshalJSON renders the op in its wire form.
func (o Op) MarshalJSON() ([]byte, error) {
	switch o.Kind {
	case OpInsert:
		return json.Marshal(opJSON{Op: "insert", Parent: o.Parent.String(), XML: o.XML})
	case OpDelete:
		return json.Marshal(opJSON{Op: "delete", Target: o.Target.String()})
	default:
		return nil, fmt.Errorf("mutate: cannot marshal op kind %d", o.Kind)
	}
}

// UnmarshalJSON parses the wire form, validating kind-specific fields.
func (o *Op) UnmarshalJSON(b []byte) error {
	var w opJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	switch w.Op {
	case "insert":
		if w.Parent == "" || w.XML == "" {
			return fmt.Errorf("mutate: insert op needs parent and xml")
		}
		// AppendParse pre-sizes from a component count, skipping Parse's
		// per-call strings.Split garbage — this runs once per WAL record
		// on update replay.
		parent, err := dewey.AppendParse(nil, w.Parent)
		if err != nil {
			return fmt.Errorf("mutate: insert parent: %w", err)
		}
		*o = Op{Kind: OpInsert, Parent: parent, XML: w.XML}
	case "delete":
		if w.Target == "" {
			return fmt.Errorf("mutate: delete op needs target")
		}
		target, err := dewey.AppendParse(nil, w.Target)
		if err != nil {
			return fmt.Errorf("mutate: delete target: %w", err)
		}
		*o = Op{Kind: OpDelete, Target: target}
	default:
		return fmt.Errorf("mutate: unknown op %q", w.Op)
	}
	return nil
}

// ReadBatchFile parses a batch file: one op per line in the JSON wire
// form, blank lines and #-comments skipped. This is the format xgen
// -updates emits and xrefine apply consumes.
func ReadBatchFile(r io.Reader) (*Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := &Batch{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		var op Op
		if err := json.Unmarshal([]byte(s), &op); err != nil {
			return nil, fmt.Errorf("mutate: batch file line %d: %w", line, err)
		}
		b.Ops = append(b.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteBatchFile writes the batch in the one-op-per-line wire form.
func WriteBatchFile(w io.Writer, b *Batch) error {
	for _, op := range b.Ops {
		j, err := json.Marshal(op)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(j, '\n')); err != nil {
			return err
		}
	}
	return nil
}
