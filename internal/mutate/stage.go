package mutate

import (
	"fmt"

	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

// StageResult is a fully materialized next epoch: the mutated document
// clone, the derived index, and the mutator (for SaveDelta). Nothing in
// it is shared mutable state with the source epoch — publishing it is a
// pointer swap.
type StageResult struct {
	Doc *xmltree.Document
	Ix  *index.Index
	Mut *index.Mutator
	// Inserted and Deleted count the nodes added/removed by the batch.
	Inserted int
	Deleted  int
	// InsertOps and DeleteOps count the batch's ops by kind.
	InsertOps int
	DeleteOps int
}

// Stage applies the batch to a clone of doc and a derivation of ix,
// leaving both originals untouched. Ops apply sequentially — a later op
// may target nodes grafted by an earlier one. Any failing op rejects the
// whole batch: the returned error carries the op index, and the caller
// discards the staged state.
func Stage(doc *xmltree.Document, ix *index.Index, b *Batch) (*StageResult, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("mutate: no document to update (index-only engine?)")
	}
	if len(b.Ops) == 0 {
		return nil, fmt.Errorf("mutate: empty batch")
	}
	res := &StageResult{Doc: doc.Clone(), Mut: index.NewMutator(ix)}
	for i, op := range b.Ops {
		var err error
		switch op.Kind {
		case OpInsert:
			err = stageInsert(res, op)
		case OpDelete:
			err = stageDelete(res, op)
		default:
			err = fmt.Errorf("mutate: unknown op kind %d", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("mutate: op %d (%s): %w", i, op.Kind, err)
		}
	}
	res.Ix = res.Mut.Index()
	return res, nil
}

func stageInsert(res *StageResult, op Op) error {
	parent, ok := res.Doc.NodeByID(op.Parent)
	if !ok {
		return fmt.Errorf("parent %s does not exist", op.Parent)
	}
	frag, err := xmltree.ParseString(op.XML, nil)
	if err != nil {
		return fmt.Errorf("fragment: %w", err)
	}
	sub, err := res.Doc.Graft(parent, frag)
	if err != nil {
		return err
	}
	if err := res.Mut.InsertSubtree(sub); err != nil {
		return err
	}
	res.Inserted += xmltree.SubtreeSize(sub)
	res.InsertOps++
	return nil
}

func stageDelete(res *StageResult, op Op) error {
	n, ok := res.Doc.NodeByID(op.Target)
	if !ok {
		return fmt.Errorf("target %s does not exist", op.Target)
	}
	if n.Parent == nil {
		return fmt.Errorf("cannot delete the document root")
	}
	// Index first (the walk needs the intact subtree), then the tree.
	if err := res.Mut.DeleteSubtree(n); err != nil {
		return err
	}
	size, err := res.Doc.Detach(n)
	if err != nil {
		return err
	}
	res.Deleted += size
	res.DeleteOps++
	return nil
}
