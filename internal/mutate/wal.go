package mutate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL is the write-ahead log of update batches. Records are framed
//
//	[len uint32 LE][seq uint64 LE][payload][crc32 LE]
//
// where len counts the payload bytes and the CRC covers seq+payload —
// the same torn-write discipline the kvstore applies to its pages. The
// sequence number is the epoch the batch produces; replay after a crash
// skips records the store already committed (seq <= store epoch).
//
// The log is truncated after every successful commit, so it holds at most
// the batch in flight; a torn tail (crash mid-append) is detected on open
// and truncated away, which is safe because an incompletely-logged batch
// was never applied.
type WAL struct {
	f    *os.File
	path string
	size int64 // bytes of validated records
}

const walHeaderSize = 12 // len + seq
const walTrailerSize = 4 // crc32

// OpenWAL opens (or creates) the log at path, validates every record, and
// truncates any torn tail.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mutate: open wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	valid, err := w.scan(nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > valid {
		// Torn tail from a crash mid-append: the batch was never
		// committed, drop it.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("mutate: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	w.size = valid
	return w, nil
}

// scan walks the log from the start, calling fn (when non-nil) for every
// valid record, and returns the byte offset of the end of the last valid
// record. An invalid or incomplete record ends the scan without error —
// it is a torn tail.
func (w *WAL) scan(fn func(seq uint64, payload []byte) error) (int64, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var off int64
	var hdr [walHeaderSize]byte
	for {
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		body := make([]byte, int(plen)+walTrailerSize)
		if _, err := io.ReadFull(w.f, body); err != nil {
			return off, nil // torn payload
		}
		payload := body[:plen]
		sum := binary.LittleEndian.Uint32(body[plen:])
		if sum != walCRC(seq, payload) {
			return off, nil // torn or corrupt record
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return off, err
			}
		}
		off += walHeaderSize + int64(plen) + walTrailerSize
	}
}

func walCRC(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	crc := crc32.ChecksumIEEE(sb[:])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// Append durably logs one record and returns the bytes written.
func (w *WAL) Append(seq uint64, payload []byte) (int64, error) {
	rec := make([]byte, 0, walHeaderSize+len(payload)+walTrailerSize)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, walCRC(seq, payload))
	if _, err := w.f.WriteAt(rec, w.size); err != nil {
		return 0, fmt.Errorf("mutate: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("mutate: wal sync: %w", err)
	}
	w.size += int64(len(rec))
	return int64(len(rec)), nil
}

// Replay calls fn for every logged record with seq > after, in log order.
func (w *WAL) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	_, err := w.scan(func(seq uint64, payload []byte) error {
		if seq <= after {
			return nil
		}
		return fn(seq, payload)
	})
	return err
}

// Reset truncates the log: its records have been committed to the store
// and are no longer needed for recovery.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("mutate: wal reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	return nil
}

// Size returns the validated log size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close releases the file.
func (w *WAL) Close() error { return w.f.Close() }
