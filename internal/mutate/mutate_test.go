package mutate

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xrefine/internal/dewey"
	"xrefine/internal/index"
	"xrefine/internal/xmltree"
)

func sampleBatch() *Batch {
	return &Batch{Ops: []Op{
		{Kind: OpInsert, Parent: dewey.ID{0}, XML: `<paper><title>new entry</title></paper>`},
		{Kind: OpDelete, Target: dewey.ID{0, 1}},
		{Kind: OpInsert, Parent: dewey.ID{0, 0}, XML: `<note>addendum</note>`},
	}}
}

func TestBatchBinaryRoundtrip(t *testing.T) {
	b := sampleBatch()
	enc := b.Encode()
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, dec) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", dec, b)
	}
	// Corrupt payloads must error, not panic or silently misparse.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestBatchFileRoundtrip(t *testing.T) {
	b := sampleBatch()
	var buf bytes.Buffer
	buf.WriteString("# generated updates\n\n")
	if err := WriteBatchFile(&buf, b); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadBatchFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, dec) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", dec, b)
	}
}

func TestOpJSONValidation(t *testing.T) {
	for _, bad := range []string{
		`{"op":"insert","xml":"<a/>"}`,             // no parent
		`{"op":"insert","parent":"0.1"}`,           // no xml
		`{"op":"delete"}`,                          // no target
		`{"op":"upsert","target":"0.1"}`,           // unknown kind
		`{"op":"insert","parent":"x.y","xml":"a"}`, // bad label
	} {
		var op Op
		if err := op.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestWALAppendReplayReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("fresh wal size %d", w.Size())
	}
	payloads := map[uint64][]byte{1: []byte("one"), 2: []byte("two"), 3: []byte("three")}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := w.Append(seq, payloads[seq]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var got []uint64
	err = w.Replay(1, func(seq uint64, p []byte) error {
		got = append(got, seq)
		if !bytes.Equal(p, payloads[seq]) {
			t.Errorf("seq %d payload %q", seq, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Fatalf("replayed %v, want [2 3]", got)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after reset", w.Size())
	}
	if err := w.Replay(0, func(uint64, []byte) error {
		t.Fatal("record after reset")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	// Simulate a crash mid-append: a partial second record.
	if _, err := w.Append(2, []byte("torn-batch-payload")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	for _, tear := range []int64{1, 5, walHeaderSize, walHeaderSize + 4} {
		if err := os.Truncate(path, goodSize+tear); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("open with %d torn bytes: %v", tear, err)
		}
		if w.Size() != goodSize {
			t.Fatalf("tear %d: size %d, want %d", tear, w.Size(), goodSize)
		}
		var seqs []uint64
		if err := w.Replay(0, func(seq uint64, p []byte) error {
			seqs = append(seqs, seq)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqs, []uint64{1}) {
			t.Fatalf("tear %d: replayed %v, want [1]", tear, seqs)
		}
		w.Close()
	}
}

const stageXML = `<root>
  <paper><title>xml keyword search</title><author>smith</author></paper>
  <paper><title>query refinement</title><author>jones</author></paper>
</root>`

func TestStageMatchesRebuild(t *testing.T) {
	doc, err := xmltree.ParseString(stageXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	b := &Batch{Ops: []Op{
		{Kind: OpInsert, Parent: dewey.ID{0}, XML: `<paper><title>live updates</title><author>smith</author></paper>`},
		{Kind: OpDelete, Target: dewey.ID{0, 1}},
		{Kind: OpInsert, Parent: dewey.ID{0, 2, 0}, XML: `<kw>incremental</kw>`},
	}}
	res, err := Stage(doc, ix, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.InsertOps != 2 || res.DeleteOps != 1 {
		t.Fatalf("op counts %d/%d", res.InsertOps, res.DeleteOps)
	}
	if res.Inserted == 0 || res.Deleted == 0 {
		t.Fatalf("node counts %d/%d", res.Inserted, res.Deleted)
	}
	// Originals untouched.
	if doc.NodeCount == res.Doc.NodeCount {
		t.Fatal("staging mutated node counts are identical — did Stage clone?")
	}
	if _, ok := doc.NodeByID(dewey.ID{0, 2}); ok {
		t.Fatal("staging grafted into the source document")
	}
	// The staged index must equal a from-scratch rebuild of the staged doc.
	want := index.Build(res.Doc)
	for _, term := range want.Vocabulary() {
		wl, _ := want.List(term)
		gl, err := res.Ix.List(term)
		if err != nil {
			t.Fatal(err)
		}
		if gl.Len() != wl.Len() {
			t.Fatalf("term %q: %d postings, rebuild has %d", term, gl.Len(), wl.Len())
		}
		for i := 0; i < wl.Len(); i++ {
			if !dewey.Equal(gl.At(i).ID, wl.At(i).ID) {
				t.Fatalf("term %q posting %d: %s vs %s", term, i, gl.At(i).ID, wl.At(i).ID)
			}
		}
	}
	if len(res.Ix.Vocabulary()) != len(want.Vocabulary()) {
		t.Fatalf("vocab sizes differ: %d vs %d", len(res.Ix.Vocabulary()), len(want.Vocabulary()))
	}
}

func TestStageRejectsBadOps(t *testing.T) {
	doc, err := xmltree.ParseString(stageXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	cases := []Batch{
		{Ops: []Op{{Kind: OpInsert, Parent: dewey.ID{0, 9}, XML: `<a>x</a>`}}},
		{Ops: []Op{{Kind: OpDelete, Target: dewey.ID{0, 9}}}},
		{Ops: []Op{{Kind: OpDelete, Target: dewey.ID{0}}}},
		{Ops: []Op{{Kind: OpInsert, Parent: dewey.ID{0}, XML: `<unclosed>`}}},
		{Ops: nil},
		// A good op followed by a bad one must reject the whole batch.
		{Ops: []Op{
			{Kind: OpInsert, Parent: dewey.ID{0}, XML: `<ok>fine</ok>`},
			{Kind: OpDelete, Target: dewey.ID{0, 7, 7}},
		}},
	}
	for i, b := range cases {
		if _, err := Stage(doc, ix, &b); err == nil {
			t.Errorf("case %d: staged without error", i)
		}
	}
	// And the source must still match its own rebuild afterwards.
	want := index.Build(doc)
	if len(ix.Vocabulary()) != len(want.Vocabulary()) {
		t.Fatal("failed staging mutated the source index vocabulary")
	}
	if fmt.Sprint(ix.PartitionRoots()) != fmt.Sprint(want.PartitionRoots()) {
		t.Fatal("failed staging mutated the source partition roots")
	}
}
