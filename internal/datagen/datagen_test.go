package datagen

import (
	"strings"
	"testing"

	"xrefine/internal/index"
	"xrefine/internal/searchfor"
	"xrefine/internal/slca"
	"xrefine/internal/xmltree"
)

func TestDBLPShape(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Tag != "bib" {
		t.Fatalf("root = %s", doc.Root.Tag)
	}
	if len(doc.Partitions()) != 50 {
		t.Fatalf("partitions = %d, want 50", len(doc.Partitions()))
	}
	for _, path := range []string{
		"bib/author",
		"bib/author/name",
		"bib/author/publications/inproceedings",
		"bib/author/publications/inproceedings/title",
		"bib/author/publications/inproceedings/year",
	} {
		if _, ok := doc.Types.ByPath(path); !ok {
			t.Errorf("type %s missing", path)
		}
	}
}

func TestDBLPDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := DBLP(&a, DBLPConfig{Authors: 20, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := DBLP(&b, DBLPConfig{Authors: 20, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different documents")
	}
	var c strings.Builder
	if err := DBLP(&c, DBLPConfig{Authors: 20, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical documents")
	}
}

func TestDBLPZipfSkew(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	// The head of the vocabulary must be much more frequent than the
	// tail — the paper's "frequencies of query keywords typically vary
	// significantly".
	head := ix.ListLen(titleWords[0])
	tail := ix.ListLen(titleWords[len(titleWords)-1])
	if head < 10*tail || head == 0 {
		t.Errorf("no Zipf skew: head %d vs tail %d", head, tail)
	}
}

func TestDBLPSupportsSearchForInference(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	cands := searchfor.Infer(ix, []string{"database", "query"}, nil)
	if len(cands) == 0 {
		t.Fatal("no search-for candidates on generated corpus")
	}
	// The top candidate must be an entity-ish type, not a leaf.
	top := cands[0].Type
	if top.Tag == "title" || top.Tag == "year" {
		t.Errorf("leaf type %s inferred as primary search-for node", top.Path())
	}
}

func TestBaseballShape(t *testing.T) {
	doc, err := BaseballDocument(BaseballConfig{Teams: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Tag != "season" {
		t.Fatalf("root = %s", doc.Root.Tag)
	}
	if len(doc.Partitions()) != 2 {
		t.Fatalf("partitions (leagues) = %d", len(doc.Partitions()))
	}
	teamType, ok := doc.Types.ByPath("season/league/division/team")
	if !ok {
		t.Fatal("team type missing")
	}
	ix := index.Build(doc)
	if got := ix.NT(teamType); got != 12 {
		t.Errorf("teams = %d, want 12", got)
	}
	if _, ok := doc.Types.ByPath("season/league/division/team/players/player/avg"); !ok {
		t.Error("player avg type missing")
	}
}

func TestWorkloadCases(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := Workload(doc, WorkloadConfig{Seed: 9, Queries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 40 {
		t.Fatalf("cases = %d", len(cases))
	}
	ix := index.Build(doc)
	for i, cs := range cases {
		if len(cs.Intended) < 2 || len(cs.Intended) > 4 {
			t.Errorf("case %d: intended length %d", i, len(cs.Intended))
		}
		if len(cs.Applied) == 0 {
			t.Errorf("case %d: no corruption applied", i)
		}
		if cs.String() == "" {
			t.Errorf("case %d: empty render", i)
		}
		// The intended query must have an SLCA below the root (it was
		// sampled from one entity subtree).
		lists := make([]*index.List, len(cs.Intended))
		ok := true
		for j, k := range cs.Intended {
			l, err := ix.List(k)
			if err != nil {
				t.Fatal(err)
			}
			if l.Len() == 0 {
				ok = false
			}
			lists[j] = l
		}
		if !ok {
			t.Errorf("case %d: intended term missing from data: %v", i, cs.Intended)
			continue
		}
		res := slca.ScanEager(lists)
		deep := false
		for _, id := range res {
			if len(id) > 1 {
				deep = true
			}
		}
		if !deep {
			t.Errorf("case %d: intended query %v has only root results", i, cs.Intended)
		}
	}
}

func TestWorkloadOpsRestriction(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range AllCorruptions {
		cases, err := Workload(doc, WorkloadConfig{Seed: 11, Queries: 10, Ops: []Corruption{op}})
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for _, cs := range cases {
			for _, a := range cs.Applied {
				if a != op {
					t.Errorf("op %v produced corruption %v", op, a)
				}
			}
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Workload(doc, WorkloadConfig{Seed: 3, Queries: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workload(doc, WorkloadConfig{Seed: 3, Queries: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("case %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestWorkloadErrorOnTinyDocument(t *testing.T) {
	doc, err := xmltree.ParseString("<r><a>x</a></r>", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Workload(doc, WorkloadConfig{Queries: 5}); err == nil {
		t.Error("expected error on entity-less document")
	}
}

func TestCorruptionString(t *testing.T) {
	for _, op := range AllCorruptions {
		if op.String() == "unknown" {
			t.Errorf("corruption %d unnamed", op)
		}
	}
	if Corruption(99).String() != "unknown" {
		t.Error("bogus corruption named")
	}
}

func TestAuctionShape(t *testing.T) {
	doc, err := AuctionDocument(AuctionConfig{Items: 30, People: 10, Auctions: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Tag != "site" {
		t.Fatalf("root = %s", doc.Root.Tag)
	}
	// Heterogeneous partitions: regions, people, auctions.
	parts := doc.Partitions()
	if len(parts) != 3 {
		t.Fatalf("partitions = %d", len(parts))
	}
	tags := map[string]bool{}
	for _, p := range parts {
		tags[p.Tag] = true
	}
	for _, want := range []string{"regions", "people", "auctions"} {
		if !tags[want] {
			t.Errorf("partition %s missing", want)
		}
	}
	ix := index.Build(doc)
	itemT, ok := doc.Types.ByPath("site/regions/region/item")
	if !ok {
		t.Fatal("item type missing")
	}
	if got := ix.NT(itemT); got != 30 {
		t.Errorf("items = %d", got)
	}
	personT, ok := doc.Types.ByPath("site/people/person")
	if !ok || ix.NT(personT) != 10 {
		t.Error("person type wrong")
	}
}

func TestAuctionDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := Auction(&a, AuctionConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := Auction(&b, AuctionConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed differs")
	}
}

func TestAuctionWorkloadAndSearchFor(t *testing.T) {
	doc, err := AuctionDocument(AuctionConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Workload sampling works on the heterogeneous schema too.
	cases, err := Workload(doc, WorkloadConfig{Seed: 2, Queries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 10 {
		t.Fatalf("cases = %d", len(cases))
	}
	// Search-for inference picks an entity type for item-ish queries.
	ix := index.Build(doc)
	cands := searchfor.Infer(ix, []string{"vintage", "guitar"}, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates on auction corpus")
	}
	if cands[0].Type.Tag == "site" {
		t.Error("root-adjacent type inferred as target")
	}
}
