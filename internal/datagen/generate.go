package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"xrefine/internal/xmltree"
)

// DBLPConfig sizes a DBLP-like bibliography. The document shape is
// bib/author/(name|publications/(inproceedings|article)/(title|booktitle|
// year)|hobby), matching the paper's Figure 1 so that authors are the
// document partitions and inproceedings/article are the entity-level
// search-for types.
type DBLPConfig struct {
	// Authors is the number of author partitions; 0 means 200.
	Authors int
	// Seed makes generation deterministic.
	Seed int64
	// MaxPapers bounds the papers per author (1..MaxPapers); 0 means 8.
	MaxPapers int
	// ZipfS is the Zipf skew for title words; 0 means 1.3.
	ZipfS float64
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.Authors == 0 {
		c.Authors = 200
	}
	if c.MaxPapers == 0 {
		c.MaxPapers = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	return c
}

// DBLP writes a synthetic bibliography to w.
func DBLP(w io.Writer, cfg DBLPConfig) error {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(r, c.ZipfS, 1, uint64(len(titleWords)-1))
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<bib>")
	for a := 0; a < c.Authors; a++ {
		name := firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
		fmt.Fprintf(bw, "  <author>\n    <name>%s</name>\n    <publications>\n", name)
		papers := 1 + r.Intn(c.MaxPapers)
		for p := 0; p < papers; p++ {
			tag := "inproceedings"
			if r.Intn(4) == 0 {
				tag = "article"
			}
			nWords := 3 + r.Intn(5)
			words := make([]string, nWords)
			for i := range words {
				words[i] = titleWords[zipf.Uint64()]
			}
			venue := venues[r.Intn(len(venues))]
			year := 1995 + r.Intn(13)
			venueTag := "booktitle"
			if tag == "article" {
				venueTag = "journal"
			}
			fmt.Fprintf(bw, "      <%s>\n        <title>%s</title>\n        <%s>%s</%s>\n        <year>%d</year>\n      </%s>\n",
				tag, strings.Join(words, " "), venueTag, venue, venueTag, year, tag)
		}
		fmt.Fprintln(bw, "    </publications>")
		if r.Intn(5) == 0 {
			fmt.Fprintf(bw, "    <hobby>%s</hobby>\n", hobbies[r.Intn(len(hobbies))])
		}
		fmt.Fprintln(bw, "  </author>")
	}
	fmt.Fprintln(bw, "</bib>")
	return bw.Flush()
}

// BaseballConfig sizes a Baseball-like dataset with shape
// season/league/division/team/(name|city|players/player/...).
type BaseballConfig struct {
	// Teams is the number of team elements; 0 means 30.
	Teams int
	// Seed makes generation deterministic.
	Seed int64
	// MaxPlayers bounds players per team; 0 means 25.
	MaxPlayers int
}

func (c BaseballConfig) withDefaults() BaseballConfig {
	if c.Teams == 0 {
		c.Teams = 30
	}
	if c.MaxPlayers == 0 {
		c.MaxPlayers = 25
	}
	return c
}

// Baseball writes a synthetic season dataset to w. Leagues are the
// document partitions; team and player are the entity types.
func Baseball(w io.Writer, cfg BaseballConfig) error {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<season>")
	leagues := []string{"american", "national"}
	divisions := []string{"east", "central", "west"}
	perLeague := (c.Teams + 1) / 2
	team := 0
	for _, lg := range leagues {
		fmt.Fprintf(bw, "  <league>\n    <name>%s</name>\n", lg)
		for _, dv := range divisions {
			fmt.Fprintf(bw, "    <division>\n      <name>%s</name>\n", dv)
			perDiv := (perLeague + 2) / 3
			for t := 0; t < perDiv && team < c.Teams; t++ {
				city := teamCities[team%len(teamCities)]
				nick := teamNicknames[team%len(teamNicknames)]
				fmt.Fprintf(bw, "      <team>\n        <city>%s</city>\n        <nickname>%s</nickname>\n        <players>\n", city, nick)
				players := 15 + r.Intn(c.MaxPlayers-14)
				for p := 0; p < players; p++ {
					given := firstNames[r.Intn(len(firstNames))]
					surname := lastNames[r.Intn(len(lastNames))]
					pos := positions[r.Intn(len(positions))]
					avg := 180 + r.Intn(170) // batting average in thousandths
					hr := r.Intn(45)
					fmt.Fprintf(bw, "          <player>\n            <given>%s</given>\n            <surname>%s</surname>\n            <position>%s</position>\n            <avg>%d</avg>\n            <homeruns>%d</homeruns>\n          </player>\n",
						given, surname, pos, avg, hr)
				}
				fmt.Fprintln(bw, "        </players>\n      </team>")
				team++
			}
			fmt.Fprintln(bw, "    </division>")
		}
		fmt.Fprintln(bw, "  </league>")
	}
	fmt.Fprintln(bw, "</season>")
	return bw.Flush()
}

// DBLPDocument generates and parses in one step.
func DBLPDocument(cfg DBLPConfig) (*xmltree.Document, error) {
	var b strings.Builder
	if err := DBLP(&b, cfg); err != nil {
		return nil, err
	}
	return xmltree.ParseString(b.String(), nil)
}

// BaseballDocument generates and parses in one step.
func BaseballDocument(cfg BaseballConfig) (*xmltree.Document, error) {
	var b strings.Builder
	if err := Baseball(&b, cfg); err != nil {
		return nil, err
	}
	return xmltree.ParseString(b.String(), nil)
}
