package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"xrefine/internal/mutate"
	"xrefine/internal/xmltree"
)

// UpdatesConfig sizes a deterministic update workload derived from a
// document. The same (document, config) pair always yields the same
// batches, so tests, soak runs, and benchmarks can share a workload by
// sharing a seed.
type UpdatesConfig struct {
	// Batches is the number of batches to derive; 0 means 8.
	Batches int
	// Ops is the number of operations per batch; 0 means 4.
	Ops int
	// Seed makes generation deterministic.
	Seed int64
	// DeleteRatio is the fraction of delete operations; 0 means 0.25.
	// Use a negative value for an insert-only workload.
	DeleteRatio float64
}

func (c UpdatesConfig) withDefaults() UpdatesConfig {
	if c.Batches == 0 {
		c.Batches = 8
	}
	if c.Ops == 0 {
		c.Ops = 4
	}
	if c.DeleteRatio == 0 {
		c.DeleteRatio = 0.25
	}
	if c.DeleteRatio < 0 {
		c.DeleteRatio = 0
	}
	return c
}

// Updates derives a sequence of update batches that are valid when applied
// to doc in order: every delete targets a node that still exists and every
// insert names a parent that still exists at that point in the sequence.
// The generator tracks validity by replaying its own operations on a
// private clone — doc itself is never modified. Later batches may target
// nodes inserted by earlier ones, exercising the Dewey relabeling path.
//
// Insert fragments draw on the same Zipf-skewed title vocabulary as the
// DBLP generator, so refinement queries hit both original and inserted
// content. Deletes target nodes at least two levels below the root,
// keeping every partition alive.
func Updates(doc *xmltree.Document, cfg UpdatesConfig) ([]*mutate.Batch, error) {
	c := cfg.withDefaults()
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("datagen: updates need a document")
	}
	r := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(r, 1.3, 1, uint64(len(titleWords)-1))
	sim := doc.Clone()
	batches := make([]*mutate.Batch, 0, c.Batches)
	for i := 0; i < c.Batches; i++ {
		b := &mutate.Batch{}
		for j := 0; j < c.Ops; j++ {
			op, err := nextOp(r, zipf, sim, c.DeleteRatio)
			if err != nil {
				return nil, fmt.Errorf("datagen: batch %d op %d: %w", i, j, err)
			}
			b.Ops = append(b.Ops, op)
		}
		batches = append(batches, b)
	}
	return batches, nil
}

// nextOp emits one operation and mirrors it onto the simulation clone so
// subsequent operations see its effect.
func nextOp(r *rand.Rand, zipf *rand.Zipf, sim *xmltree.Document, deleteRatio float64) (mutate.Op, error) {
	if r.Float64() < deleteRatio {
		if target := pickDeletable(r, sim); target != nil {
			op := mutate.Op{Kind: mutate.OpDelete, Target: target.ID}
			if _, err := sim.Detach(target); err != nil {
				return mutate.Op{}, err
			}
			return op, nil
		}
		// Nothing safely deletable (tiny document); insert instead.
	}
	parent := pickParent(r, sim)
	xml := insertFragment(r, zipf, parent)
	frag, err := xmltree.ParseString(xml, nil)
	if err != nil {
		return mutate.Op{}, err
	}
	op := mutate.Op{Kind: mutate.OpInsert, Parent: parent.ID, XML: xml}
	if _, err := sim.Graft(parent, frag); err != nil {
		return mutate.Op{}, err
	}
	return op, nil
}

// pickDeletable returns a uniformly chosen node at depth >= 2 (label
// length >= 3), or nil when none exists. Partitions (root children) are
// never deleted, so the document keeps its shape.
func pickDeletable(r *rand.Rand, sim *xmltree.Document) *xmltree.Node {
	var candidates []*xmltree.Node
	sim.Walk(func(n *xmltree.Node) bool {
		if len(n.ID) >= 3 {
			candidates = append(candidates, n)
		}
		return true
	})
	if len(candidates) == 0 {
		return nil
	}
	return candidates[r.Intn(len(candidates))]
}

// pickParent chooses where the next fragment lands: usually the root (a
// new entity-level subtree, the common ingest pattern), sometimes a
// partition (growing an existing entity).
func pickParent(r *rand.Rand, sim *xmltree.Document) *xmltree.Node {
	parts := sim.Partitions()
	if len(parts) > 0 && r.Intn(3) == 0 {
		return parts[r.Intn(len(parts))]
	}
	return sim.Root
}

// insertFragment builds an entity-shaped fragment. Under the root it
// mirrors a DBLP author; under a partition it is a single publication.
func insertFragment(r *rand.Rand, zipf *rand.Zipf, parent *xmltree.Node) string {
	if parent.Parent == nil {
		name := firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
		var sb strings.Builder
		sb.WriteString("<author><name>")
		sb.WriteString(name)
		sb.WriteString("</name><publications>")
		papers := 1 + r.Intn(3)
		for p := 0; p < papers; p++ {
			sb.WriteString(paperFragment(r, zipf))
		}
		sb.WriteString("</publications></author>")
		return sb.String()
	}
	return paperFragment(r, zipf)
}

func paperFragment(r *rand.Rand, zipf *rand.Zipf) string {
	nWords := 3 + r.Intn(5)
	words := make([]string, nWords)
	for i := range words {
		words[i] = titleWords[zipf.Uint64()]
	}
	venue := venues[r.Intn(len(venues))]
	year := 1995 + r.Intn(13)
	return fmt.Sprintf("<inproceedings><title>%s</title><booktitle>%s</booktitle><year>%d</year></inproceedings>",
		strings.Join(words, " "), venue, year)
}
