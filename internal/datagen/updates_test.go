package datagen

import (
	"strings"
	"testing"

	"xrefine/internal/mutate"
	"xrefine/internal/xmltree"
)

func batchFileBytes(t *testing.T, batches []*mutate.Batch) string {
	t.Helper()
	var sb strings.Builder
	for _, b := range batches {
		if err := mutate.WriteBatchFile(&sb, b); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

func TestUpdatesDeterministic(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := UpdatesConfig{Batches: 5, Ops: 6, Seed: 9}
	a, err := Updates(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Updates(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batchFileBytes(t, a) != batchFileBytes(t, b) {
		t.Error("same seed produced different update workloads")
	}
	cfg.Seed = 10
	c, err := Updates(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batchFileBytes(t, a) == batchFileBytes(t, c) {
		t.Error("different seeds produced identical update workloads")
	}
}

// TestUpdatesApplyCleanly stages every generated batch in sequence: the
// generator's promise is that each op is valid at its point in the
// workload, including ops that target nodes inserted by earlier batches.
func TestUpdatesApplyCleanly(t *testing.T) {
	doc, err := DBLPDocument(DBLPConfig{Authors: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	batches, err := Updates(doc, UpdatesConfig{Batches: 10, Ops: 5, Seed: 4, DeleteRatio: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 10 {
		t.Fatalf("batches = %d", len(batches))
	}
	inserts, deletes := 0, 0
	cur := doc
	for i, b := range batches {
		if len(b.Ops) != 5 {
			t.Fatalf("batch %d has %d ops", i, len(b.Ops))
		}
		for _, op := range b.Ops {
			switch op.Kind {
			case mutate.OpInsert:
				inserts++
			case mutate.OpDelete:
				deletes++
			}
		}
		// Stage without an index: validity of targets and fragments is a
		// pure tree property.
		sim := cur.Clone()
		for j, op := range b.Ops {
			switch op.Kind {
			case mutate.OpInsert:
				parent, ok := sim.NodeByID(op.Parent)
				if !ok {
					t.Fatalf("batch %d op %d: parent %s missing", i, j, op.Parent)
				}
				frag, err := xmltree.ParseString(op.XML, nil)
				if err != nil {
					t.Fatalf("batch %d op %d: %v", i, j, err)
				}
				if _, err := sim.Graft(parent, frag); err != nil {
					t.Fatalf("batch %d op %d: %v", i, j, err)
				}
			case mutate.OpDelete:
				n, ok := sim.NodeByID(op.Target)
				if !ok {
					t.Fatalf("batch %d op %d: target %s missing", i, j, op.Target)
				}
				if _, err := sim.Detach(n); err != nil {
					t.Fatalf("batch %d op %d: %v", i, j, err)
				}
			}
		}
		cur = sim
	}
	if inserts == 0 || deletes == 0 {
		t.Fatalf("workload not mixed: %d inserts, %d deletes", inserts, deletes)
	}
	// Round-trip through the batch-file wire form (what xgen emits).
	var sb strings.Builder
	for _, b := range batches {
		if err := mutate.WriteBatchFile(&sb, b); err != nil {
			t.Fatal(err)
		}
	}
	back, err := mutate.ReadBatchFile(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != inserts+deletes {
		t.Fatalf("round-trip ops = %d, want %d", len(back.Ops), inserts+deletes)
	}
}
