// Package datagen synthesizes the evaluation substrate the paper's
// experiments run on. The paper uses the real DBLP (420 MB) and Baseball
// XML datasets plus the query log of a public DBLP demo; none of those are
// redistributable here, so this package generates documents with the same
// structural shape (entity-style schemas under a flat root, which is what
// the partition-based algorithms exploit) and the same statistical
// character (Zipf-skewed term frequencies, which is what the ranking model
// and the short-list eager algorithm exploit), plus query workloads with
// controlled, labeled corruption — giving every experiment a ground truth
// the original human-judged evaluation lacked.
package datagen

// titleWords is the topical vocabulary for DBLP-like titles. It contains
// every term the paper's sample queries rely on (online, database, keyword,
// skyline, twig, matching, world wide web, machine learning, ...). Order
// matters: Zipf sampling makes earlier words far more frequent.
var titleWords = []string{
	"database", "query", "xml", "data", "search", "system", "efficient",
	"keyword", "web", "processing", "online", "mining", "learning",
	"machine", "distributed", "index", "optimization", "stream", "graph",
	"pattern", "matching", "twig", "join", "skyline", "computation",
	"world", "wide", "semantic", "retrieval", "information", "storage",
	"transaction", "concurrency", "parallel", "spatial", "temporal",
	"probabilistic", "ranking", "clustering", "classification", "neural",
	"network", "deep", "knowledge", "ontology", "schema", "integration",
	"warehouse", "analytics", "cloud", "scalable", "adaptive", "dynamic",
	"incremental", "approximate", "similarity", "nearest", "neighbor",
	"partition", "compression", "encoding", "labeling", "dewey", "ancestor",
	"tree", "structure", "document", "fragment", "element", "attribute",
	"relational", "object", "oriented", "functional", "declarative",
	"algebra", "calculus", "logic", "constraint", "view", "materialized",
	"cache", "buffer", "recovery", "logging", "replication", "consistency",
	"availability", "latency", "throughput", "benchmark", "evaluation",
	"empirical", "framework", "architecture", "prototype", "algorithm",
	"complexity", "bound", "optimal", "heuristic", "greedy", "randomized",
	"sampling", "sketch", "histogram", "cardinality", "selectivity",
	"estimation", "cost", "model", "plan", "operator", "pipeline",
	"iterator", "hash", "sort", "merge", "nested", "loop", "scan",
	"sequential", "random", "access", "disk", "memory", "main", "flash",
	"solid", "state", "hierarchical", "flat", "sparse", "dense", "vector",
	"matrix", "tensor", "kernel", "feature", "extraction", "selection",
	"dimension", "reduction", "projection", "embedding", "latent",
	"topic", "language", "text", "corpus", "token", "term", "frequency",
	"inverse", "weight", "score", "relevance", "feedback", "expansion",
	"refinement", "suggestion", "completion", "correction", "spelling",
	"fuzzy", "exact", "boolean", "conjunctive", "disjunctive", "top",
	"threshold", "early", "termination", "pruning", "skipping", "eager",
	"lazy", "batch", "interactive", "visual", "exploration", "interface",
}

// venues for DBLP-like booktitle/journal fields.
var venues = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "sigir", "kdd", "www",
	"icdt", "pods", "dasfaa", "dexa", "webdb", "tods", "tkde", "vldbj",
}

// firstNames and lastNames for author elements.
var firstNames = []string{
	"john", "mary", "wei", "jian", "david", "michael", "sarah", "yan",
	"peter", "anna", "james", "li", "xin", "hui", "robert", "linda",
	"thomas", "susan", "charles", "karen", "daniel", "nancy", "paul",
	"amit", "raj", "priya", "kenji", "yuki", "hans", "ingrid",
}

var lastNames = []string{
	"smith", "chen", "wang", "kumar", "johnson", "lee", "zhang", "liu",
	"brown", "garcia", "miller", "davis", "lu", "ling", "bao", "meng",
	"papakonstantinou", "widom", "halevy", "suciu", "abiteboul", "gray",
	"stonebraker", "dewitt", "bernstein", "ullman", "tanaka", "mueller",
}

// hobbies give authors an occasional non-publication child, mirroring the
// paper's Figure 1.
var hobbies = []string{
	"swimming", "hiking", "chess", "photography", "cycling", "painting",
	"cooking", "gardening", "climbing", "sailing",
}

// Baseball vocabulary.
var teamCities = []string{
	"boston", "chicago", "detroit", "cleveland", "baltimore", "oakland",
	"seattle", "texas", "anaheim", "minnesota", "atlanta", "florida",
	"montreal", "philadelphia", "houston", "pittsburgh", "colorado",
	"arizona", "losangeles", "sandiego", "sanfrancisco", "milwaukee",
}

var teamNicknames = []string{
	"redsox", "whitesox", "tigers", "indians", "orioles", "athletics",
	"mariners", "rangers", "angels", "twins", "braves", "marlins",
	"expos", "phillies", "astros", "pirates", "rockies", "diamondbacks",
	"dodgers", "padres", "giants", "brewers",
}

var positions = []string{
	"pitcher", "catcher", "firstbase", "secondbase", "thirdbase",
	"shortstop", "leftfield", "centerfield", "rightfield", "designatedhitter",
}
