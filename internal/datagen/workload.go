package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"xrefine/internal/lexicon"
	"xrefine/internal/xmltree"
)

// Corruption labels how an intended query was damaged.
type Corruption int

const (
	// CorruptTypo mutates letters of one term (spelling error).
	CorruptTypo Corruption = iota
	// CorruptSplit breaks one term in two (mistaken split).
	CorruptSplit
	// CorruptMerge concatenates two adjacent terms (mistaken merge).
	CorruptMerge
	// CorruptMismatch replaces a term with a synonym the data does not
	// use (vocabulary mismatch, the paper's Example 1).
	CorruptMismatch
	// CorruptRestrict adds a term from an unrelated entity, making the
	// query over-restrictive (the paper's Q4 scenario).
	CorruptRestrict
)

// String names the corruption.
func (c Corruption) String() string {
	switch c {
	case CorruptTypo:
		return "typo"
	case CorruptSplit:
		return "split"
	case CorruptMerge:
		return "merge"
	case CorruptMismatch:
		return "mismatch"
	case CorruptRestrict:
		return "restrict"
	}
	return "unknown"
}

// AllCorruptions lists every corruption kind.
var AllCorruptions = []Corruption{CorruptTypo, CorruptSplit, CorruptMerge, CorruptMismatch, CorruptRestrict}

// Case is one workload query: a corrupted query with its known intent —
// the ground truth the simulated relevance judges score against.
type Case struct {
	// Intended is the clean query, sampled from one entity subtree so it
	// is guaranteed to have a meaningful co-occurrence.
	Intended []string
	// Corrupted is the query a careless user would type.
	Corrupted []string
	// Applied lists the corruption operations, in application order.
	Applied []Corruption
}

// String renders the case compactly.
func (c Case) String() string {
	ops := make([]string, len(c.Applied))
	for i, op := range c.Applied {
		ops[i] = op.String()
	}
	return fmt.Sprintf("{%s} ~%s~> {%s}", strings.Join(c.Intended, ","), strings.Join(ops, "+"), strings.Join(c.Corrupted, ","))
}

// WorkloadConfig controls query sampling and corruption.
type WorkloadConfig struct {
	// Seed makes the workload deterministic.
	Seed int64
	// Queries is the number of cases; 0 means 50.
	Queries int
	// MinLen/MaxLen bound the intended query length; 0 means 2..4.
	MinLen, MaxLen int
	// Ops restricts the corruption kinds; empty means all.
	Ops []Corruption
	// OpsPerQuery applies that many corruptions per case; 0 means 1.
	OpsPerQuery int
	// EntityDepth is the minimum node-type depth an entity subtree must
	// have to be sampled from; 0 means 2.
	EntityDepth int
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Queries == 0 {
		c.Queries = 50
	}
	if c.MinLen == 0 {
		c.MinLen = 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = 4
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen
	}
	if len(c.Ops) == 0 {
		c.Ops = AllCorruptions
	}
	if c.OpsPerQuery == 0 {
		c.OpsPerQuery = 1
	}
	if c.EntityDepth == 0 {
		c.EntityDepth = 2
	}
	return c
}

// Workload samples intended queries from entity subtrees of doc and
// corrupts them. It returns an error when the document has no suitable
// entities.
func Workload(doc *xmltree.Document, cfg WorkloadConfig) ([]Case, error) {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	lex := lexicon.Builtin()

	// Collect entity subtrees: nodes deep enough with enough distinct
	// value terms (tag terms make poor query keywords for sampling).
	// Along the way, track each term's occurrence count and home
	// partition: over-restriction terms are drawn from rare terms of
	// *other* partitions, so the restricted query reliably has no
	// meaningful co-occurrence.
	type entity struct {
		terms []string
		part  uint32 // partition ordinal (first Dewey component below root)
	}
	type termInfo struct {
		count     int
		part      uint32
		multiPart bool
	}
	var entities []entity
	terms := map[string]*termInfo{}
	var allTerms []string
	// Pass 1: term statistics over the whole document.
	doc.Walk(func(n *xmltree.Node) bool {
		part := uint32(0)
		if len(n.ID) > 1 {
			part = n.ID[1]
		}
		ws := n.Terms()
		for i := 1; i < len(ws); i++ { // skip the tag term
			w := ws[i]
			ti := terms[w]
			if ti == nil {
				ti = &termInfo{part: part}
				terms[w] = ti
				allTerms = append(allTerms, w)
			}
			ti.count++
			if ti.part != part {
				ti.multiPart = true
			}
		}
		return true
	})
	sort.Strings(allTerms)
	// Pass 2: entity subtrees with their term sets.
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Type.Depth < c.EntityDepth {
			return true
		}
		termSet := map[string]bool{}
		var rec func(m *xmltree.Node)
		rec = func(m *xmltree.Node) {
			ts := m.Terms()
			for i := 1; i < len(ts); i++ {
				termSet[ts[i]] = true
			}
			for _, ch := range m.Children {
				rec(ch)
			}
		}
		rec(n)
		if len(termSet) >= c.MaxLen {
			ts := make([]string, 0, len(termSet))
			for w := range termSet {
				ts = append(ts, w)
			}
			sort.Strings(ts)
			part := uint32(0)
			if len(n.ID) > 1 {
				part = n.ID[1]
			}
			entities = append(entities, entity{terms: ts, part: part})
		}
		return false // entities do not nest for sampling purposes
	})
	if len(entities) == 0 {
		return nil, fmt.Errorf("datagen: no entity subtrees at depth >= %d with >= %d terms", c.EntityDepth, c.MaxLen)
	}
	// Restriction candidates: rare terms confined to a single partition.
	// Adding one to a query sampled from a different partition makes the
	// conjunction unsatisfiable anywhere below the root.
	var restrictAll []string
	for _, w := range allTerms {
		ti := terms[w]
		if !ti.multiPart && ti.count <= 3 {
			restrictAll = append(restrictAll, w)
		}
	}
	if len(restrictAll) == 0 {
		restrictAll = allTerms // degenerate tiny documents
	}

	cases := make([]Case, 0, c.Queries)
	for len(cases) < c.Queries {
		ent := entities[r.Intn(len(entities))]
		qLen := c.MinLen + r.Intn(c.MaxLen-c.MinLen+1)
		if qLen > len(ent.terms) {
			qLen = len(ent.terms)
		}
		perm := r.Perm(len(ent.terms))
		intended := make([]string, qLen)
		for i := 0; i < qLen; i++ {
			intended[i] = ent.terms[perm[i]]
		}
		inEntity := map[string]bool{}
		for _, w := range ent.terms {
			inEntity[w] = true
		}
		pickRestrict := func() (string, bool) {
			for tries := 0; tries < 64; tries++ {
				w := restrictAll[r.Intn(len(restrictAll))]
				if !inEntity[w] && terms[w].part != ent.part {
					return w, true
				}
			}
			return "", false
		}
		corrupted := append([]string(nil), intended...)
		var applied []Corruption
		for i := 0; i < c.OpsPerQuery; i++ {
			op := c.Ops[r.Intn(len(c.Ops))]
			next, ok := applyCorruption(r, lex, corrupted, op, pickRestrict)
			if !ok {
				continue
			}
			corrupted = next
			applied = append(applied, op)
		}
		if len(applied) == 0 || sameStrings(corrupted, intended) {
			continue // corruption was a no-op; resample
		}
		cases = append(cases, Case{Intended: intended, Corrupted: corrupted, Applied: applied})
	}
	return cases, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyCorruption damages q with one operation; it reports failure when the
// operation is inapplicable (e.g. no term long enough to split).
func applyCorruption(r *rand.Rand, lex *lexicon.Lexicon, q []string, op Corruption, pickRestrict func() (string, bool)) ([]string, bool) {
	out := append([]string(nil), q...)
	switch op {
	case CorruptTypo:
		for _, i := range r.Perm(len(out)) {
			w := out[i]
			if len(w) < 4 {
				continue
			}
			out[i] = typo(r, w)
			return out, out[i] != w
		}
	case CorruptSplit:
		for _, i := range r.Perm(len(out)) {
			w := out[i]
			if len(w) < 5 {
				continue
			}
			cut := 2 + r.Intn(len(w)-3)
			left, right := w[:cut], w[cut:]
			res := append([]string(nil), out[:i]...)
			res = append(res, left, right)
			res = append(res, out[i+1:]...)
			return res, true
		}
	case CorruptMerge:
		if len(out) < 2 {
			return nil, false
		}
		i := r.Intn(len(out) - 1)
		res := append([]string(nil), out[:i]...)
		res = append(res, out[i]+out[i+1])
		res = append(res, out[i+2:]...)
		return res, true
	case CorruptMismatch:
		for _, i := range r.Perm(len(out)) {
			syns := lex.Synonyms(out[i])
			if len(syns) == 0 {
				continue
			}
			out[i] = syns[r.Intn(len(syns))].Other(out[i])
			return out, true
		}
		// No synonym known for any term; substitute a generic
		// mismatched vocabulary word instead.
		i := r.Intn(len(out))
		out[i] = "publication"
		return out, true
	case CorruptRestrict:
		if w, ok := pickRestrict(); ok {
			return append(out, w), true
		}
	}
	return nil, false
}

// typo injects a realistic spelling error: transpose two adjacent letters,
// drop a letter, or double one.
func typo(r *rand.Rand, w string) string {
	b := []byte(w)
	switch r.Intn(3) {
	case 0: // transpose
		i := r.Intn(len(b) - 1)
		if b[i] != b[i+1] {
			b[i], b[i+1] = b[i+1], b[i]
			return string(b)
		}
		fallthrough
	case 1: // drop
		i := r.Intn(len(b))
		return string(append(b[:i:i], b[i+1:]...))
	default: // double
		i := r.Intn(len(b))
		return string(b[:i]) + string(b[i]) + string(b[i:])
	}
}
