package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"xrefine/internal/xmltree"
)

// AuctionConfig sizes an XMark-flavoured auction-site document:
// site/(regions/region/item | people/person | auctions/auction). It is the
// third synthetic schema, added beyond the paper's two datasets to exercise
// the system on a document whose partitions have *heterogeneous* types —
// DBLP and Baseball partitions are homogeneous (all authors, all leagues),
// which hides a class of search-for inference mistakes.
type AuctionConfig struct {
	// Items is the number of auctioned items; 0 means 150.
	Items int
	// People is the number of registered people; 0 means 80.
	People int
	// Auctions is the number of open auctions; 0 means 100.
	Auctions int
	// Seed makes generation deterministic.
	Seed int64
}

func (c AuctionConfig) withDefaults() AuctionConfig {
	if c.Items == 0 {
		c.Items = 150
	}
	if c.People == 0 {
		c.People = 80
	}
	if c.Auctions == 0 {
		c.Auctions = 100
	}
	return c
}

var (
	auctionCategories = []string{
		"books", "electronics", "furniture", "clothing", "jewelry",
		"toys", "music", "garden", "sports", "automotive",
	}
	auctionAdjectives = []string{
		"vintage", "antique", "rare", "mint", "restored", "signed",
		"limited", "original", "handmade", "imported",
	}
	auctionNouns = []string{
		"guitar", "watch", "lamp", "desk", "camera", "bicycle",
		"painting", "typewriter", "globe", "radio", "clock", "rug",
	}
	regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
)

// Auction writes a synthetic auction-site document to w.
func Auction(w io.Writer, cfg AuctionConfig) error {
	c := cfg.withDefaults()
	r := rand.New(rand.NewSource(c.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<site>")

	// regions/region/item — items grouped by region.
	fmt.Fprintln(bw, "  <regions>")
	perRegion := (c.Items + len(regions) - 1) / len(regions)
	item := 0
	for _, reg := range regions {
		fmt.Fprintf(bw, "    <region><name>%s</name>\n", reg)
		for i := 0; i < perRegion && item < c.Items; i++ {
			name := auctionAdjectives[r.Intn(len(auctionAdjectives))] + " " +
				auctionNouns[r.Intn(len(auctionNouns))]
			cat := auctionCategories[r.Intn(len(auctionCategories))]
			fmt.Fprintf(bw, "      <item><name>%s</name><category>%s</category><price>%d</price></item>\n",
				name, cat, 10+r.Intn(990))
			item++
		}
		fmt.Fprintln(bw, "    </region>")
	}
	fmt.Fprintln(bw, "  </regions>")

	// people/person — bidders and sellers.
	fmt.Fprintln(bw, "  <people>")
	for p := 0; p < c.People; p++ {
		given := firstNames[r.Intn(len(firstNames))]
		surname := lastNames[r.Intn(len(lastNames))]
		city := teamCities[r.Intn(len(teamCities))]
		fmt.Fprintf(bw, "    <person><name>%s %s</name><city>%s</city><rating>%d</rating></person>\n",
			given, surname, city, r.Intn(100))
	}
	fmt.Fprintln(bw, "  </people>")

	// auctions/auction — open auctions referencing items by words.
	fmt.Fprintln(bw, "  <auctions>")
	for a := 0; a < c.Auctions; a++ {
		noun := auctionNouns[r.Intn(len(auctionNouns))]
		bidder := lastNames[r.Intn(len(lastNames))]
		fmt.Fprintf(bw, "    <auction><itemname>%s</itemname><highbidder>%s</highbidder><current>%d</current><bids>%d</bids></auction>\n",
			noun, bidder, 20+r.Intn(2000), r.Intn(40))
	}
	fmt.Fprintln(bw, "  </auctions>")
	fmt.Fprintln(bw, "</site>")
	return bw.Flush()
}

// AuctionDocument generates and parses in one step.
func AuctionDocument(cfg AuctionConfig) (*xmltree.Document, error) {
	var b strings.Builder
	if err := Auction(&b, cfg); err != nil {
		return nil, err
	}
	return xmltree.ParseString(b.String(), nil)
}
