package dewey

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"0", "0.0", "0.1.2", "0.130.5", "123.456.789"}
	for _, s := range cases {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := id.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "a", "0.", ".0", "0..1", "0.-1", "0.4294967296"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestDepth(t *testing.T) {
	if d := Root().Depth(); d != 0 {
		t.Errorf("root depth = %d, want 0", d)
	}
	if d := MustParse("0.1.2").Depth(); d != 2 {
		t.Errorf("depth(0.1.2) = %d, want 2", d)
	}
}

func TestChildParent(t *testing.T) {
	r := Root()
	c := r.Child(3)
	if c.String() != "0.3" {
		t.Fatalf("child = %s", c)
	}
	p, ok := c.Parent()
	if !ok || !Equal(p, r) {
		t.Fatalf("parent(%s) = %s, %v", c, p, ok)
	}
	if _, ok := r.Parent(); ok {
		t.Error("root should have no parent")
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	// Document order of a small tree written out by hand.
	order := []string{"0", "0.0", "0.0.0", "0.0.1", "0.1", "0.1.0", "0.2", "0.10"}
	for i := range order {
		for j := range order {
			a, b := MustParse(order[i]), MustParse(order[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := Compare(a, b); got != want {
				t.Errorf("Compare(%s,%s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAncestry(t *testing.T) {
	a := MustParse("0.1")
	b := MustParse("0.1.2.3")
	if !IsAncestor(a, b) || !IsAncestorOrSelf(a, b) {
		t.Error("0.1 should be ancestor of 0.1.2.3")
	}
	if IsAncestor(a, a) {
		t.Error("IsAncestor must be strict")
	}
	if !IsAncestorOrSelf(a, a) {
		t.Error("IsAncestorOrSelf must accept self")
	}
	if IsAncestorOrSelf(b, a) {
		t.Error("descendant is not ancestor")
	}
	if IsAncestorOrSelf(MustParse("0.12"), MustParse("0.1.2")) {
		t.Error("0.12 is not an ancestor of 0.1.2")
	}
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"0.0.1", "0.0.2", "0.0"},
		{"0.0.1", "0.0.1", "0.0.1"},
		{"0.0.1", "0.0.1.5", "0.0.1"},
		{"0.1", "0.2", "0"},
		{"0", "0.9.9", "0"},
	}
	for _, c := range cases {
		got := LCA(MustParse(c.a), MustParse(c.b))
		if got.String() != c.want {
			t.Errorf("LCA(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
		if n := LCALen(MustParse(c.a), MustParse(c.b)); n != len(MustParse(c.want)) {
			t.Errorf("LCALen(%s,%s) = %d", c.a, c.b, n)
		}
	}
}

func TestLCAAll(t *testing.T) {
	ids := []ID{MustParse("0.0.1.2"), MustParse("0.0.1.4"), MustParse("0.0.3")}
	got, err := LCAAll(ids)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "0.0" {
		t.Errorf("LCAAll = %s, want 0.0", got)
	}
	if _, err := LCAAll(nil); err == nil {
		t.Error("LCAAll(nil) should error")
	}
}

func TestPartition(t *testing.T) {
	if _, ok := Root().Partition(); ok {
		t.Error("root has no partition")
	}
	p, ok := MustParse("0.3.1.4").Partition()
	if !ok || p.String() != "0.3" {
		t.Errorf("partition = %s, %v", p, ok)
	}
}

func TestNextBoundsSubtree(t *testing.T) {
	d := MustParse("0.1.2")
	n := d.Next()
	if n.String() != "0.1.3" {
		t.Fatalf("next = %s", n)
	}
	desc := MustParse("0.1.2.9.9")
	if !(Compare(d, desc) < 0 && Compare(desc, n) < 0) {
		t.Error("descendant must fall in [d, d.Next())")
	}
	after := MustParse("0.1.3")
	if Compare(after, n) < 0 {
		t.Error("following sibling must not precede Next()")
	}
}

func TestBytesRoundtrip(t *testing.T) {
	cases := []string{"0", "0.0", "0.126", "0.127", "0.128", "0.4294967295", "0.1.2.3.4.5"}
	for _, s := range cases {
		id := MustParse(s)
		enc := id.Bytes()
		dec, n, err := FromBytes(enc)
		if err != nil {
			t.Fatalf("FromBytes(%s): %v", s, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes for %s", n, len(enc), s)
		}
		if !Equal(dec, id) {
			t.Errorf("roundtrip %s -> %s", s, dec)
		}
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, _, err := FromBytes([]byte{0x01}); err == nil {
		t.Error("missing terminator should error")
	}
	if _, _, err := FromBytes([]byte{0xFF, 0x00}); err == nil {
		t.Error("truncated wide component should error")
	}
}

func randomID(r *rand.Rand) ID {
	id := ID{0}
	depth := r.Intn(8)
	for i := 0; i < depth; i++ {
		// Mix small and wide components to cross the encoding boundary.
		var c uint32
		switch r.Intn(3) {
		case 0:
			c = uint32(r.Intn(5))
		case 1:
			c = uint32(120 + r.Intn(16))
		default:
			c = r.Uint32()
		}
		id = append(id, c)
	}
	return id
}

// Property: the byte encoding preserves document order exactly.
func TestPropertyEncodingPreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomID(r), randomID(r)
		want := Compare(a, b)
		got := bytes.Compare(a.Bytes(), b.Bytes())
		if got != want {
			t.Fatalf("order mismatch: Compare(%s,%s)=%d bytes=%d", a, b, want, got)
		}
	}
}

// Property: sorting by Compare equals sorting by encoded bytes.
func TestPropertySortAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ids := make([]ID, 300)
	for i := range ids {
		ids[i] = randomID(r)
	}
	byCompare := make([]ID, len(ids))
	copy(byCompare, ids)
	sort.Slice(byCompare, func(i, j int) bool { return Compare(byCompare[i], byCompare[j]) < 0 })
	byBytes := make([]ID, len(ids))
	copy(byBytes, ids)
	sort.Slice(byBytes, func(i, j int) bool {
		return bytes.Compare(byBytes[i].Bytes(), byBytes[j].Bytes()) < 0
	})
	for i := range ids {
		if !Equal(byCompare[i], byBytes[i]) {
			t.Fatalf("sort disagreement at %d: %s vs %s", i, byCompare[i], byBytes[i])
		}
	}
}

// Property: LCA is the unique common ancestor that is a descendant-or-self
// of every other common ancestor.
func TestPropertyLCA(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := ID{0}, ID{0}
		for _, v := range x {
			a = append(a, uint32(v%4))
		}
		for _, v := range y {
			b = append(b, uint32(v%4))
		}
		l := LCA(a, b)
		if !IsAncestorOrSelf(l, a) || !IsAncestorOrSelf(l, b) {
			return false
		}
		// The child of l along a (if any) must not be an ancestor of b.
		if len(l) < len(a) {
			longer := a[:len(l)+1]
			if IsAncestorOrSelf(longer, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total order consistent with Equal and antisymmetric.
func TestPropertyCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		a, b, c := randomID(r), randomID(r), randomID(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %s,%s", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %s,%s,%s", a, b, c)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	x := MustParse("0.1.2.3.4.5.6")
	y := MustParse("0.1.2.3.4.5.7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}

func BenchmarkBytes(b *testing.B) {
	x := MustParse("0.1.2.3.4.5.6")
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = x.Append(buf[:0])
	}
}
