package dewey

import (
	"bytes"
	"testing"
)

// FuzzFromBytes feeds arbitrary bytes to the binary decoder: it must never
// panic, and whenever it succeeds the re-encoding of the decoded label must
// decode to the same label (the encoder is canonical, but the wide form can
// also carry small components, so byte-level identity is not required).
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{0x01, 0x00})
	f.Add([]byte{0xFF, 0x00, 0x00, 0x00, 0x7F, 0x00})
	f.Add([]byte{0x00})
	f.Add([]byte{})
	f.Add(MustParse("0.1.2.300").Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		id, n, err := FromBytes(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := id.Bytes()
		id2, _, err := FromBytes(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !Equal(id, id2) {
			t.Fatalf("roundtrip changed label: %s vs %s", id, id2)
		}
	})
}

// FuzzParse checks the text parser never panics and roundtrips.
func FuzzParse(f *testing.F) {
	f.Add("0")
	f.Add("0.1.2")
	f.Add("0..1")
	f.Add("-")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := Parse(s)
		if err != nil {
			return
		}
		id2, err := Parse(id.String())
		if err != nil || !Equal(id, id2) {
			t.Fatalf("roundtrip of %q failed: %v", s, err)
		}
	})
}

// FuzzCompareConsistency cross-checks Compare against the byte encoding on
// arbitrary component slices.
func FuzzCompareConsistency(f *testing.F) {
	f.Add([]byte{0, 1}, []byte{0, 2})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) == 0 || len(b) == 0 {
			return
		}
		ida := make(ID, len(a))
		for i, v := range a {
			ida[i] = uint32(v)
		}
		idb := make(ID, len(b))
		for i, v := range b {
			idb[i] = uint32(v)
		}
		if got, want := bytes.Compare(ida.Bytes(), idb.Bytes()), Compare(ida, idb); got != want {
			t.Fatalf("encoding order %d != compare %d for %s vs %s", got, want, ida, idb)
		}
	})
}
