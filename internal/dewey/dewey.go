// Package dewey implements Dewey order labels for XML nodes.
//
// A Dewey label identifies a node in a rooted ordered tree by the sequence
// of child ordinals on the path from the root to the node. The document
// root is labeled "0"; its i-th child is "0.i", and so on. Dewey labels
// give constant-time ancestor tests and linear-time lowest common ancestor
// (LCA) computation, and their lexicographic component order coincides with
// XML document order — the two properties every algorithm in this
// repository relies on.
package dewey

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey label: the component path from the document root to a node.
// The zero-length ID is invalid everywhere except as a sentinel; the
// document root is ID{0}.
type ID []uint32

// Root returns the label of the document root.
func Root() ID { return ID{0} }

// Parse parses a dotted decimal label such as "0.1.2".
func Parse(s string) (ID, error) { return AppendParse(nil, s) }

// AppendParse parses a dotted decimal label into dst (reusing its backing
// array when capacity allows) and returns the extended slice — the
// allocation-free form of Parse for hot loops that parse many labels into
// one scratch buffer. A component-count pre-scan sizes the single grow,
// and components parse in place without strings.Split's per-call slice of
// substrings. On error dst is returned unchanged.
func AppendParse(dst ID, s string) (ID, error) {
	if s == "" {
		return dst, errors.New("dewey: empty label")
	}
	orig := s
	n := 1 + strings.Count(s, ".")
	base := len(dst)
	if cap(dst)-base < n {
		grown := make(ID, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	out := dst
	for i := 0; i < n; i++ {
		part := s
		if j := strings.IndexByte(s, '.'); j >= 0 {
			part, s = s[:j], s[j+1:]
		} else {
			s = ""
		}
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return dst[:base], fmt.Errorf("dewey: bad component %q in %q: %w", part, orig, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the label in dotted decimal form.
func (d ID) String() string {
	if len(d) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range d {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// AppendText appends the dotted decimal form of d (what String returns)
// onto buf and returns the extended slice — the allocation-free variant
// response encoders use on the serving hot path.
func (d ID) AppendText(buf []byte) []byte {
	for i, c := range d {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(c), 10)
	}
	return buf
}

// Depth returns the number of edges from the root; the root has depth 0.
func (d ID) Depth() int { return len(d) - 1 }

// Clone returns an independent copy of d.
func (d ID) Clone() ID {
	c := make(ID, len(d))
	copy(c, d)
	return c
}

// Child returns the label of the ord-th child of d.
func (d ID) Child(ord uint32) ID {
	c := make(ID, len(d)+1)
	copy(c, d)
	c[len(d)] = ord
	return c
}

// Parent returns the label of d's parent and true, or nil and false when d
// is the root (or empty).
func (d ID) Parent() (ID, bool) {
	if len(d) <= 1 {
		return nil, false
	}
	return d[:len(d)-1].Clone(), true
}

// Compare orders labels by document order: component-wise numeric order
// with a prefix (ancestor) sorting before its extensions. It returns -1, 0
// or +1.
func Compare(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether a and b are the same label.
func Equal(a, b ID) bool { return Compare(a, b) == 0 }

// IsAncestorOrSelf reports whether a is an ancestor of b or equal to b,
// i.e. whether a is a component prefix of b.
func IsAncestorOrSelf(a, b ID) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsAncestor reports whether a is a strict ancestor of b.
func IsAncestor(a, b ID) bool {
	return len(a) < len(b) && IsAncestorOrSelf(a, b)
}

// LCA returns the lowest common ancestor of a and b: their longest common
// component prefix. Both labels must stem from the same document (share the
// root component); LCA of any two valid labels is at worst the root.
func LCA(a, b ID) ID {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i].Clone()
}

// LCALen returns only the length of the common prefix of a and b, avoiding
// the allocation of LCA when the caller just needs the cut point.
func LCALen(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// LCAAll folds LCA over a non-empty set of labels.
func LCAAll(ids []ID) (ID, error) {
	if len(ids) == 0 {
		return nil, errors.New("dewey: LCAAll of empty set")
	}
	acc := ids[0].Clone()
	for _, id := range ids[1:] {
		acc = acc[:LCALen(acc, id)]
	}
	return acc, nil
}

// Partition returns the document-partition label of d per Definition 6.1 of
// the paper: the subtree rooted at the i-th child of the document root. It
// returns false when d is the root itself (the root belongs to no
// partition).
func (d ID) Partition() (ID, bool) {
	if len(d) < 2 {
		return nil, false
	}
	return d[:2].Clone(), true
}

// Next returns the immediate successor of d in document order among labels
// of the same length, i.e. d with its last component incremented. It is the
// exclusive upper bound of d's subtree in document order: every descendant
// of d sorts before d.Next(), every following node sorts at or after it.
func (d ID) Next() ID {
	c := d.Clone()
	c[len(c)-1]++
	return c
}

// Append encodes d onto buf in a binary form whose bytewise lexicographic
// order equals document order, suitable as a key component in an ordered
// key-value store. Each component is emitted big-endian with a continuation
// scheme: components 0..0x7F take one byte, larger components take five
// bytes prefixed by 0xFF. A 0x00 terminator makes prefixes sort first.
func (d ID) Append(buf []byte) []byte {
	for _, c := range d {
		if c < 0x7F {
			// +1 keeps every component byte nonzero so the 0x00
			// terminator sorts ancestors before descendants.
			buf = append(buf, byte(c)+1)
		} else {
			var tmp [4]byte
			binary.BigEndian.PutUint32(tmp[:], c)
			buf = append(buf, 0xFF, tmp[0], tmp[1], tmp[2], tmp[3])
		}
	}
	return append(buf, 0x00)
}

// Bytes encodes d per Append into a fresh buffer.
func (d ID) Bytes() []byte { return d.Append(make([]byte, 0, len(d)+1)) }

// FromBytes decodes a label previously encoded with Append/Bytes. It
// returns the decoded ID and the number of bytes consumed.
func FromBytes(b []byte) (ID, int, error) {
	var id ID
	i := 0
	for i < len(b) {
		switch {
		case b[i] == 0x00:
			return id, i + 1, nil
		case b[i] == 0xFF:
			if i+5 > len(b) {
				return nil, 0, errors.New("dewey: truncated wide component")
			}
			id = append(id, binary.BigEndian.Uint32(b[i+1:i+5]))
			i += 5
		default:
			id = append(id, uint32(b[i])-1)
			i++
		}
	}
	return nil, 0, errors.New("dewey: missing terminator")
}
