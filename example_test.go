package xrefine_test

import (
	"fmt"
	"log"
	"strings"

	"xrefine"
)

const exampleDoc = `
<bib>
  <author>
    <name>John Ben</name>
    <publications>
      <inproceedings><title>online database systems</title><year>2003</year></inproceedings>
      <inproceedings><title>efficient keyword search</title><year>2005</year></inproceedings>
    </publications>
  </author>
</bib>`

// The engine answers a clean query directly.
func ExampleEngine_Query() {
	eng, err := xrefine.NewFromXML(strings.NewReader(exampleDoc), nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := eng.Query("online database")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("needs refinement:", resp.NeedRefine)
	fmt.Println("results:", len(resp.Queries[0].Results))
	// Output:
	// needs refinement: false
	// results: 1
}

// A misspelled query is refined automatically: the engine returns the
// corrected query together with its matches.
func ExampleEngine_Query_refinement() {
	eng, err := xrefine.NewFromXML(strings.NewReader(exampleDoc), nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := eng.Query("online databse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("needs refinement:", resp.NeedRefine)
	best := resp.Queries[0]
	fmt.Printf("suggestion: %s (dSim %.0f, %d results)\n",
		strings.Join(best.Keywords, " "), best.DSim, len(best.Results))
	// Output:
	// needs refinement: true
	// suggestion: database online (dSim 1, 1 results)
}

// Tokenize exposes the engine's query normalization.
func ExampleTokenize() {
	fmt.Println(xrefine.Tokenize("On-Line, DATA base"))
	// Output:
	// [online data base]
}
