// Differential tests for the parallel partition pipeline: for any query,
// corpus, K and worker count, PartitionTopKParallel must return exactly the
// candidates of the sequential PartitionTopK — same keyword sets, same
// dissimilarities, and Results concatenated in the same document order.
package xrefine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"xrefine/internal/datagen"
	"xrefine/internal/experiments"
	"xrefine/internal/refine"
)

// outcomeSig renders everything the engine consumes from an exploration
// outcome; two outcomes with equal signatures rank identically.
func outcomeSig(out *refine.TopKOutcome) string {
	var b strings.Builder
	for _, it := range out.Candidates {
		fmt.Fprintf(&b, "%s|%v|", strings.Join(it.RQ.Keywords, ","), it.RQ.DSim)
		for _, m := range it.Results {
			fmt.Fprintf(&b, "%s:%s;", m.ID, m.Type.Path())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func diffQuery(t *testing.T, c *experiments.Corpus, terms []string, k, workers int) (ranParallel bool) {
	t.Helper()
	in, _, err := c.Engine.Prepare(terms)
	if err != nil {
		t.Fatalf("prepare %v: %v", terms, err)
	}
	in.Parallelism = 1
	seq, err := refine.PartitionTopK(in, k)
	if err != nil {
		t.Fatalf("sequential %v: %v", terms, err)
	}
	par, err := refine.PartitionTopKParallel(in, k, workers)
	if err != nil {
		t.Fatalf("parallel %v: %v", terms, err)
	}
	if got, want := outcomeSig(par), outcomeSig(seq); got != want {
		t.Errorf("query %v k=%d workers=%d diverged\nparallel:\n%s\nsequential:\n%s", terms, k, workers, got, want)
	}
	if par.Partitions != seq.Partitions {
		t.Errorf("query %v k=%d workers=%d visited %d partitions, sequential %d", terms, k, workers, par.Partitions, seq.Partitions)
	}
	return par.Workers > 1
}

// frequentTerms returns the n most frequent indexed terms — queries over
// them have the longest lists and are guaranteed to engage the parallel
// path on the test corpus.
func frequentTerms(c *experiments.Corpus, n int) []string {
	vocab := c.Index.Vocabulary()
	sort.SliceStable(vocab, func(a, b int) bool {
		return c.Index.ListLen(vocab[a]) > c.Index.ListLen(vocab[b])
	})
	if len(vocab) > n {
		vocab = vocab[:n]
	}
	return vocab
}

// TestParallelPartitionMatchesSequential runs the full generated workload
// plus frequent-term queries through both execution paths for the
// acceptance grid k ∈ {1,3,10} × workers ∈ {2,4,8}.
func TestParallelPartitionMatchesSequential(t *testing.T) {
	c, err := experiments.DBLPCorpus(0.2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 909, Queries: 30})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]string, 0, len(batch)+4)
	for _, cs := range batch {
		queries = append(queries, cs.Corrupted)
	}
	freq := frequentTerms(c, 4)
	queries = append(queries,
		freq[:2], freq[1:3], freq[:3], append([]string{"databse"}, freq[2:4]...))
	parallelRuns := 0
	for _, k := range []int{1, 3, 10} {
		for _, workers := range []int{2, 4, 8} {
			for _, terms := range queries {
				if diffQuery(t, c, terms, k, workers) {
					parallelRuns++
				}
			}
		}
	}
	if parallelRuns == 0 {
		t.Fatal("no query engaged the parallel path; the differential proved nothing")
	}
	t.Logf("parallel path engaged on %d runs", parallelRuns)
}

// TestParallelPartitionFuzzDifferential throws randomized queries, K and
// worker counts at both paths. The seed is fixed for reproducibility.
func TestParallelPartitionFuzzDifferential(t *testing.T) {
	c, err := experiments.DBLPCorpus(0.2)
	if err != nil {
		t.Fatal(err)
	}
	vocab := c.Index.Vocabulary()
	freq := frequentTerms(c, 12)
	rng := rand.New(rand.NewSource(7))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		n := 2 + rng.Intn(3)
		terms := make([]string, 0, n)
		for j := 0; j < n; j++ {
			// Mix frequent terms (long lists, parallel engagement) with
			// uniform vocabulary draws (short lists, absent partitions).
			if rng.Intn(2) == 0 {
				terms = append(terms, freq[rng.Intn(len(freq))])
			} else {
				terms = append(terms, vocab[rng.Intn(len(vocab))])
			}
		}
		if rng.Intn(4) == 0 {
			terms = append(terms, "databse") // spelling rule trigger
		}
		k := 1 + rng.Intn(10)
		workers := 2 + rng.Intn(7)
		diffQuery(t, c, terms, k, workers)
	}
}
