#!/usr/bin/env bash
# coldstart_gate.sh — CI ratchet for the log engine's hint-file cold
# start, run by the backend-matrix CI job.
#
# Builds a value-heavy log store via the xbench storage experiment and
# asserts that opening it through hint files is at least MIN_SPEEDUP times
# faster than the hint-blind baseline (every data file replayed and
# CRC-checked). A regression here means hint files stopped covering
# sealed segments, or the open path stopped trusting them — either way
# cold start degrades back to full log replay and the gate fails.
set -euo pipefail

MIN_SPEEDUP="${MIN_SPEEDUP:-10}"
SCALE="${SCALE:-0.5}"
WRITES="${WRITES:-40000}"
REPS="${REPS:-3}"

cd "$(dirname "$0")/.."

echo "coldstart-gate: measuring hint vs scan reopen (scale=$SCALE writes=$WRITES reps=$REPS)"
OUT="$(go run ./cmd/xbench -scale "$SCALE" -writes "$WRITES" -reps "$REPS" -json storage)" ||
    { echo "coldstart-gate: FAIL: xbench storage did not run" >&2; exit 1; }

# Pull the log row's numbers out of the JSON without assuming jq exists.
SPEEDUP="$(printf '%s' "$OUT" | tr ',{' '\n\n' | grep -A20 '"backend":"log"' |
    grep -o '"hint_speedup":[0-9.]*' | head -1 | cut -d: -f2)"
AMP="$(printf '%s' "$OUT" | tr ',{' '\n\n' | grep -A20 '"backend":"log"' |
    grep -o '"amplification":[0-9.]*' | head -1 | cut -d: -f2)"
[ -n "$SPEEDUP" ] || { echo "coldstart-gate: FAIL: no log-backend row in: $OUT" >&2; exit 1; }

echo "coldstart-gate: hint speedup ${SPEEDUP}x (floor ${MIN_SPEEDUP}x), amplification ${AMP:-?}x"
awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }' ||
    { echo "coldstart-gate: FAIL: hint open only ${SPEEDUP}x faster than replay open (need ${MIN_SPEEDUP}x)" >&2; exit 1; }
# The same run prices compaction: a settled store must not carry more
# than 2x its live bytes on disk.
if [ -n "${AMP:-}" ]; then
    awk -v a="$AMP" 'BEGIN { exit !(a < 2) }' ||
        { echo "coldstart-gate: FAIL: on-disk amplification ${AMP}x (need < 2x)" >&2; exit 1; }
fi
echo "coldstart-gate: PASS"
