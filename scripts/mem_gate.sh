#!/usr/bin/env bash
# mem_gate.sh — posting-storage memory ratchet, run by `make memgate` and
# the CI memory job.
#
# Runs the xbench compress experiment in JSON mode and fails if the
# encoded representation's resident bytes per posting rise above the
# ceiling recorded in scripts/mem_floor.txt, or if its compression ratio
# over the modeled materialized form falls below 3x (the tentpole claim
# of the succinct posting-list work). The ceiling is set a little above
# the measured figure, so the gate only trips on a real regression — a
# codec change that bloats blocks, a skip-table field that grew — not on
# corpus noise. Lower the ceiling when the encoding improves; never raise
# it to make a PR pass.
set -euo pipefail

cd "$(dirname "$0")/.."
GO="${GO:-go}"
CEILING="$(tr -d '[:space:]' < scripts/mem_floor.txt)"
SCALE="${SCALE:-0.5}"

OUT="$("$GO" run ./cmd/xbench -scale "$SCALE" -reps 1 -json compress)"

BPP="$(printf '%s' "$OUT" | sed -n 's/.*"mode":"encoded","resident_bytes":[0-9]*,"bytes_per_posting":\([0-9.]*\).*/\1/p')"
RATIO="$(printf '%s' "$OUT" | sed -n 's/.*"compression_ratio":\([0-9.]*\).*/\1/p')"
if [ -z "$BPP" ] || [ -z "$RATIO" ]; then
    echo "mem_gate: FAIL — could not parse xbench compress output:" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

echo "memory: encoded ${BPP} B/posting (ceiling ${CEILING}), compression ${RATIO}x (floor 3.0)"
# awk handles the float comparisons; bash arithmetic is integer-only.
if ! awk -v b="$BPP" -v c="$CEILING" 'BEGIN { exit !(b <= c) }'; then
    echo "mem_gate: FAIL — encoded postings cost ${BPP} B each, above the ${CEILING} B ceiling" >&2
    echo "mem_gate: the block codec regressed; check blockWriter and the skip table" >&2
    exit 1
fi
if ! awk -v r="$RATIO" 'BEGIN { exit !(r >= 3.0) }'; then
    echo "mem_gate: FAIL — compression ratio ${RATIO}x fell below the 3x floor" >&2
    exit 1
fi
echo "mem_gate: OK"
