#!/usr/bin/env bash
# replica_soak.sh — replica fault-matrix soak for the replicated serving
# layer, run by `make replicas` and the CI replica-fault-matrix job.
#
# Two phases, both under the race detector:
#   1. The in-tree replica suites: byte-identity across replica counts and
#      hedging modes, the slow/flaky/dead/epoch-lagged fault matrix, epoch
#      reconciliation, and the hedge-cancel promptness stress.
#   2. A live race-built xserve over a 2-shard x 2-replica directory with
#      probabilistic store chaos armed (-chaos), compared request-by-request
#      against a monolithic xserve over the unsplit corpus: every
#      non-degraded response must be byte-identical (zero result
#      divergence), /healthz must carry the replica table, and /metrics
#      must expose the xrefine_replica_* families (validated with the
#      in-tree exposition parser).
set -euo pipefail

ADDR_MONO="${ADDR_MONO:-127.0.0.1:18082}"
ADDR_REPL="${ADDR_REPL:-127.0.0.1:18083}"
MONO="http://$ADDR_MONO"
REPL="http://$ADDR_REPL"
ROUNDS="${ROUNDS:-25}"
WORK="$(mktemp -d)"
MONO_PID=""
REPL_PID=""

cleanup() {
    [ -n "$MONO_PID" ] && kill "$MONO_PID" 2>/dev/null || true
    [ -n "$REPL_PID" ] && kill "$REPL_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "replica-soak: FAIL: $*" >&2
    [ -f "$WORK/mono.log" ] && cat "$WORK/mono.log" >&2
    [ -f "$WORK/repl.log" ] && cat "$WORK/repl.log" >&2
    exit 1
}

cd "$(dirname "$0")/.."

echo "replica-soak: phase 1: replica suites (-race)"
go test -race -timeout 10m \
    -run 'TestReplicaByteIdentity|TestReplicaFaultMatrix|TestReplicaEpochReconcile|TestReplicaWriteRejectionNoQuarantine|TestReplicaHedgeCancelPromptness|TestReplicatedStoreLayout' \
    ./internal/shard/ || fail "replica race suites failed"

echo "replica-soak: phase 2: building binaries (xserve race-instrumented)"
go build -race -o "$WORK/xserve" ./cmd/xserve
go build -o "$WORK/xgen" ./cmd/xgen
go build -o "$WORK/obscheck" ./cmd/obscheck

echo "replica-soak: generating corpus and replicated shard directory"
"$WORK/xgen" -kind dblp -authors 200 -seed 42 -out "$WORK/dblp.xml"
"$WORK/xgen" -kind shards -xml "$WORK/dblp.xml" -shards 2 -replicas 2 \
    -shard-dir "$WORK/shards"
[ -f "$WORK/shards/shard-0.r1.kv" ] || fail "replica store files missing"

echo "replica-soak: starting monolith on $ADDR_MONO"
"$WORK/xserve" -xml "$WORK/dblp.xml" -addr "$ADDR_MONO" \
    >"$WORK/mono.log" 2>&1 &
MONO_PID=$!

echo "replica-soak: starting replicated router on $ADDR_REPL (chaos armed)"
"$WORK/xserve" -shards "$WORK/shards" -replicas 2 -hedge-after 2ms \
    -chaos "rate=0.01,jitter=200us-1ms,seed=7" -addr "$ADDR_REPL" \
    >"$WORK/repl.log" 2>&1 &
REPL_PID=$!

for base in "$MONO" "$REPL"; do
    for i in $(seq 1 50); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && break
        sleep 0.2
    done
    curl -fsS "$base/healthz" >/dev/null || fail "server $base never became healthy"
done

echo "replica-soak: differential query loop ($ROUNDS rounds)"
QUERIES=("online+databse" "database+query" "keyword+serch+xml" "twig+matching+pattern")
DIVERGED=0
DEGRADED=0
TOTAL=0
for q in "${QUERIES[@]}"; do
    WANT="$(curl -fsS --max-time 15 "$MONO/search?q=$q")" || fail "monolith query $q failed"
    echo "$WANT" > "$WORK/want.json"
    r=0
    while [ "$r" -lt "$ROUNDS" ]; do
        GOT="$(curl -fsS --max-time 15 "$REPL/search?q=$q")" || fail "replicated query $q failed"
        TOTAL=$((TOTAL + 1))
        if [[ "$GOT" == *'"degraded"'* ]]; then
            # A degraded response is allowed to differ (it says so); it is
            # never allowed to silently diverge, which the else arm checks.
            DEGRADED=$((DEGRADED + 1))
        elif [ "$GOT" != "$WANT" ]; then
            DIVERGED=$((DIVERGED + 1))
            printf '%s' "$GOT" > "$WORK/got.json"
            echo "replica-soak: divergence on q=$q (round $r)" >&2
        fi
        r=$((r + 1))
    done
done
[ "$DIVERGED" -eq 0 ] || fail "$DIVERGED/$TOTAL non-degraded responses diverged from the monolith"
echo "replica-soak: $TOTAL responses, 0 diverged, $DEGRADED degraded under chaos"

echo "replica-soak: checking /healthz replica table"
HEALTH="$(curl -fsS "$REPL/healthz")"
[[ "$HEALTH" == *'"replicas"'* ]] || fail "healthz carries no replica table: $HEALTH"
[[ "$HEALTH" == *'"replicas_total": 4'* || "$HEALTH" == *'"replicas_total":4'* ]] ||
    fail "healthz replicas_total != 4: $HEALTH"
[[ "$HEALTH" == *'"shards": 2'* || "$HEALTH" == *'"shards":2'* ]] ||
    fail "healthz shards != 2: $HEALTH"

echo "replica-soak: validating xrefine_replica_* metric families"
"$WORK/obscheck" -url "$REPL/metrics" -min-families 12 \
    -want xrefine_replica_scans_total,xrefine_replica_hedges_total,xrefine_replica_retries_total,xrefine_replica_quarantined,xrefine_replica_breaker_open,xrefine_shard_scans_total ||
    fail "obscheck rejected the replica exposition"

kill "$REPL_PID" && wait "$REPL_PID" 2>/dev/null || true
REPL_PID=""
grep -q 'WARNING: DATA RACE' "$WORK/repl.log" && fail "race detected in replicated server"

echo "replica-soak: PASS"
