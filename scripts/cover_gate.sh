#!/usr/bin/env bash
# cover_gate.sh — statement-coverage ratchet, run by `make cover` and the
# CI coverage job.
#
# Runs the internal test suites with cross-package coverage over
# ./internal/... and fails if the total statement coverage drops below
# the floor recorded in scripts/cover_floor.txt. The floor is set a
# couple of points under the measured total, so the gate only trips on a
# real regression — untested new code, or deleted tests — not on noise.
# Raise the floor when coverage grows; never lower it to make a PR pass.
set -euo pipefail

cd "$(dirname "$0")/.."
GO="${GO:-go}"
FLOOR="$(tr -d '[:space:]' < scripts/cover_floor.txt)"
PROFILE="${PROFILE:-$(mktemp)}"

"$GO" test -count=1 -coverprofile="$PROFILE" -coverpkg=./internal/... ./internal/...

TOTAL="$("$GO" tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
echo "coverage: total ${TOTAL}% (floor ${FLOOR}%)"
# awk handles the float comparison; bash arithmetic is integer-only.
if ! awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { exit !(t >= f) }'; then
    echo "cover_gate: FAIL — total coverage ${TOTAL}% fell below the ${FLOOR}% floor" >&2
    echo "cover_gate: add tests for the new code, or remove dead code" >&2
    exit 1
fi
echo "cover_gate: OK"
