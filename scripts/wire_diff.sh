#!/usr/bin/env bash
# wire_diff.sh — HTTP-differential conformance soak for the binary wire
# protocol, run by `make wirediff` and the CI wire-conformance job.
#
# A race-built xserve serves both surfaces from the same backend; every
# request is answered once over HTTP GET /search and once over the wire
# protocol (xrefine search -wire), and the two payloads must be
# byte-identical. Three phases:
#   1. Plain engine (-xml): strategies x k x parallelism.
#   2. Replicated shards with probabilistic store chaos armed (-chaos):
#      non-degraded responses must still match request-by-request; a
#      degraded response may differ (it says so) but never silently.
#   3. Log-structured storage backend (XREFINE_BACKEND=log -> xserve
#      -backend log over an xgen-written log store): the wire surface is
#      engine-agnostic like the HTTP one.
# Finally the server must drain cleanly on SIGTERM with both surfaces up
# and the race-instrumented log must be clean.
set -euo pipefail

ADDR_HTTP="${ADDR_HTTP:-127.0.0.1:18090}"
ADDR_WIRE="${ADDR_WIRE:-127.0.0.1:18091}"
HTTP="http://$ADDR_HTTP"
ROUNDS="${ROUNDS:-3}"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "wire-diff: FAIL: $*" >&2
    [ -f "$WORK/srv.log" ] && cat "$WORK/srv.log" >&2
    exit 1
}

cd "$(dirname "$0")/.."

echo "wire-diff: building binaries (xserve race-instrumented)"
go build -race -o "$WORK/xserve" ./cmd/xserve
go build -o "$WORK/xrefine" ./cmd/xrefine
go build -o "$WORK/xgen" ./cmd/xgen

echo "wire-diff: generating corpus and replicated shard directory"
"$WORK/xgen" -kind dblp -authors 200 -seed 42 -out "$WORK/dblp.xml"
"$WORK/xgen" -kind shards -xml "$WORK/dblp.xml" -shards 2 -replicas 2 \
    -shard-dir "$WORK/shards"

QUERIES=("online databse" "database query" "keyword serch xml" "twig matching pattern" "refinement" "system index data")
STRATEGIES=(partition sle stack)
TOTAL=0
DEGRADED=0

start_server() {
    "$WORK/xserve" "$@" -addr "$ADDR_HTTP" -wire "$ADDR_WIRE" \
        >"$WORK/srv.log" 2>&1 &
    SRV_PID=$!
    for i in $(seq 1 50); do
        curl -fsS "$HTTP/healthz" >/dev/null 2>&1 && break
        sleep 0.2
    done
    curl -fsS "$HTTP/healthz" >/dev/null || fail "server never became healthy"
}

stop_server() {
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    grep -q 'WARNING: DATA RACE' "$WORK/srv.log" && fail "race detected in server"
    return 0
}

# diff_one <phase> <query> <strategy> <k> <parallel> [skip-degraded]
diff_one() {
    local phase="$1" q="$2" strategy="$3" k="$4" parallel="$5" skip="${6:-}"
    local enc="${q// /+}"
    local url="$HTTP/search?q=$enc&strategy=$strategy&k=$k"
    [ "$parallel" -gt 0 ] && url="$url&parallel=$parallel"
    curl -fsS --max-time 15 "$url" >"$WORK/http.json" || fail "$phase: http query '$q' failed"
    "$WORK/xrefine" search -wire "$ADDR_WIRE" -strategy "$strategy" -k "$k" -parallel "$parallel" \
        $q >"$WORK/wire.json" || fail "$phase: wire query '$q' failed"
    TOTAL=$((TOTAL + 1))
    if [ -n "$skip" ] && grep -q '"degraded"' "$WORK/http.json" "$WORK/wire.json"; then
        # Under chaos each surface rolls its own faults; a degraded
        # response may differ but must say so — checked by this grep.
        DEGRADED=$((DEGRADED + 1))
        return 0
    fi
    cmp -s "$WORK/http.json" "$WORK/wire.json" || {
        diff "$WORK/http.json" "$WORK/wire.json" | head -20 >&2
        fail "$phase: wire payload diverged from HTTP body (q='$q' strategy=$strategy k=$k parallel=$parallel)"
    }
}

echo "wire-diff: phase 1: plain engine, strategies x k x parallelism"
start_server -xml "$WORK/dblp.xml"
for strategy in "${STRATEGIES[@]}"; do
    for q in "${QUERIES[@]}"; do
        for k in 1 3 10; do
            for parallel in 0 2; do
                diff_one plain "$q" "$strategy" "$k" "$parallel"
            done
        done
    done
done
stop_server

echo "wire-diff: phase 2: replicated shards with chaos armed"
start_server -shards "$WORK/shards" -replicas 2 -hedge-after 2ms \
    -chaos "rate=0.01,jitter=200us-1ms,seed=7"
r=0
while [ "$r" -lt "$ROUNDS" ]; do
    for q in "${QUERIES[@]}"; do
        diff_one chaos "$q" partition 3 0 skip-degraded
    done
    r=$((r + 1))
done
stop_server

echo "wire-diff: phase 3: log-structured storage backend"
"$WORK/xrefine" index -xml "$WORK/dblp.xml" -index "$WORK/dblp.logdb" -backend log -with-doc
start_server -index "$WORK/dblp.logdb" -backend log
for q in "${QUERIES[@]}"; do
    diff_one log "$q" partition 3 0
done

echo "wire-diff: drain check (SIGTERM with both surfaces up)"
kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || fail "server exited non-zero on drain"
SRV_PID=""
grep -q 'drained cleanly' "$WORK/srv.log" || fail "server did not drain cleanly"
grep -q 'WARNING: DATA RACE' "$WORK/srv.log" && fail "race detected in server"

[ "$TOTAL" -ge 100 ] || fail "only $TOTAL requests diffed; want >= 100"
echo "wire-diff: PASS ($TOTAL requests diffed, $DEGRADED skipped as degraded under chaos)"
