#!/usr/bin/env bash
# update_soak.sh — mixed read/write soak for the live-update subsystem,
# run by `make soak` and the CI update-soak job.
#
# Two phases, both under the race detector:
#   1. The in-tree concurrency suites: queries pinning epochs while Apply
#      publishes new ones, and the crash-recovery fault matrix. `go test
#      -timeout` is the hang detector — a reader stuck on a dead epoch or
#      a writer deadlocked against the WAL fails the build here.
#   2. A live race-built xserve: concurrent query loops hammer /search
#      while update batches stream into POST /update; the soak then
#      asserts the final epoch, that the WAL drained, and that a server
#      restart serves the same epoch (durability end to end).
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"
BATCHES="${BATCHES:-12}"
OPS_PER_BATCH="${OPS_PER_BATCH:-5}"
READERS="${READERS:-4}"
# BACKEND selects the storage engine for the live store (btree | log);
# the phase-1 suites also honour it via XREFINE_BACKEND.
BACKEND="${BACKEND:-${XREFINE_BACKEND:-btree}}"
export XREFINE_BACKEND="$BACKEND"
WORK="$(mktemp -d)"
SERVER_PID=""
READER_PIDS=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    for p in $READER_PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "update-soak: FAIL: $*" >&2
    [ -f "$WORK/server.log" ] && cat "$WORK/server.log" >&2
    exit 1
}

cd "$(dirname "$0")/.."

echo "update-soak: phase 1: concurrency + crash-recovery suites (-race, backend=$BACKEND)"
go test -race -timeout 10m -count "${SOAK_COUNT:-2}" \
    -run 'TestQueriesPinEpochDuringApply|TestApplyCrashRecoveryMatrix|TestOpenLiveReplaysPendingWAL|TestCheckpointTruncatesWALAndBoundsReopen' \
    ./internal/core/ || fail "race suites failed"
go test -race -timeout 5m -run 'TestSearchByteIdenticalAcrossConfigs' \
    ./internal/server/ || fail "rebuild-equivalence differential failed"

echo "update-soak: phase 2: building race-instrumented binaries"
go build -race -o "$WORK/xserve" ./cmd/xserve
go build -o "$WORK/xgen" ./cmd/xgen
go build -o "$WORK/xrefine" ./cmd/xrefine
go build -o "$WORK/xstat" ./cmd/xstat

echo "update-soak: generating corpus and update workload"
"$WORK/xgen" -kind dblp -authors 150 -seed 42 -out "$WORK/dblp.xml" \
    -updates $((BATCHES * OPS_PER_BATCH)) -update-batch "$OPS_PER_BATCH"
STORE="$WORK/dblp.kv"
[ "$BACKEND" = "log" ] && STORE="$WORK/dblp.logdb"
"$WORK/xrefine" index -xml "$WORK/dblp.xml" -index "$STORE" -backend "$BACKEND" -with-doc

# Split the ride-along batch file back into per-batch JSON bodies.
awk -v dir="$WORK" '/^# batch /{n=$3; next} /^{/{print > (dir "/op-" n ".jsonl")}' \
    "$WORK/dblp.xml.updates"
# Walk the batch numbers numerically — a lexicographic glob would post
# op-10 right after op-1, and later batches insert under nodes earlier
# batches create, so order is semantic.
NBATCH=0
while [ -f "$WORK/op-$NBATCH.jsonl" ]; do
    printf '{"ops":[%s]}' "$(paste -sd, "$WORK/op-$NBATCH.jsonl")" > "$WORK/batch-$NBATCH.json"
    NBATCH=$((NBATCH + 1))
done
[ "$NBATCH" -ge "$BATCHES" ] || fail "expected $BATCHES batches, built $NBATCH"

echo "update-soak: starting live xserve on $ADDR"
"$WORK/xserve" -index "$STORE" -live -addr "$ADDR" -max-inflight 64 \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "xserve exited early"
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || fail "xserve never became healthy"
# Guard against answering a stale server on a shared port: ours must be
# live-update-enabled at epoch 0.
BOOT="$(curl -fsS "$BASE/healthz")"
[[ "$BOOT" == *'"live_updates": true'* || "$BOOT" == *'"live_updates":true'* ]] ||
    fail "server on $ADDR is not this soak's live server: $BOOT"

echo "update-soak: $READERS readers vs $NBATCH update batches"
reader() {
    local queries=("online+databse" "database+query" "keyword+serch" "twig+pattern+matching")
    while :; do
        curl -fsS --max-time 10 "$BASE/search?q=${queries[RANDOM % 4]}" >/dev/null || exit 1
    done
}
for i in $(seq 1 "$READERS"); do
    reader & READER_PIDS="$READER_PIDS $!"
done

i=0
while [ "$i" -lt "$NBATCH" ]; do
    CODE="$(curl -sS --max-time 30 -o "$WORK/apply-$i.json" -w '%{http_code}' \
        -X POST --data-binary "@$WORK/batch-$i.json" "$BASE/update")" ||
        fail "batch $i: POST /update did not answer"
    [ "$CODE" = 200 ] ||
        fail "batch $i rejected ($CODE): $(cat "$WORK/apply-$i.json" 2>/dev/null)"
    i=$((i + 1))
done
for p in $READER_PIDS; do
    kill -0 "$p" 2>/dev/null || fail "a reader died mid-soak (query path broke under writes)"
done
for p in $READER_PIDS; do kill "$p" 2>/dev/null || true; done
READER_PIDS=""

HEALTH="$(curl -fsS "$BASE/healthz")"
[[ "$HEALTH" == *"\"epoch\": $NBATCH"* || "$HEALTH" == *"\"epoch\":$NBATCH"* ]] ||
    fail "healthz epoch != $NBATCH: $HEALTH"
[[ "$HEALTH" == *'"live_updates": true'* || "$HEALTH" == *'"live_updates":true'* ]] ||
    fail "healthz does not report live updates: $HEALTH"
# Buffer the scrape: grep -q would close the pipe on first match and
# pipefail would turn curl's resulting write error into a failure.
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt" || fail "metrics scrape failed"
grep -q '^xrefine_mutate_applied_batches_total' "$WORK/metrics.txt" ||
    fail "mutate metric families missing from /metrics"

echo "update-soak: restarting to verify durability"
kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q 'WARNING: DATA RACE' "$WORK/server.log" && fail "race detected in live server"

"$WORK/xstat" -index "$STORE" >"$WORK/stat.txt" || fail "xstat failed post-soak"
grep -q "epoch:       $NBATCH" "$WORK/stat.txt" ||
    fail "store epoch after restart != $NBATCH: $(cat "$WORK/stat.txt")"
grep -q 'wal:         empty' "$WORK/stat.txt" ||
    fail "WAL did not drain: $(cat "$WORK/stat.txt")"
"$WORK/xstat" -storage -index "$STORE" >"$WORK/storage.txt" ||
    fail "xstat -storage failed post-soak"
grep -q "backend:" "$WORK/storage.txt" ||
    fail "xstat -storage report malformed: $(cat "$WORK/storage.txt")"

echo "update-soak: PASS ($NBATCH batches, $READERS readers, backend=$BACKEND)"
