#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test, run by `make obs`
# and the CI observability job.
#
# Boots xserve on a generated corpus, then asserts the ops surfaces
# actually work against a live server:
#   1. /metrics parses as Prometheus text exposition (via obscheck, the
#      in-tree strict parser) and carries the expected families;
#   2. /search?...&explain=1 returns a span tree, and the same query
#      without the flag leaks no explain key;
#   3. /debug/slowlog serves the traced ring.
# Phase 2 reruns the surfaces against a chaos-armed 2x2 replicated
# server: every query is trace-sampled, an exemplar trace_id is scraped
# off the OpenMetrics exposition and must resolve at /debug/trace/<id>,
# hedge events must appear in /debug/events, and both expositions
# (Prometheus and OpenMetrics-with-exemplars) must pass obscheck's
# histogram/exemplar validation.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18080}"
ADDR_REPL="${ADDR_REPL:-127.0.0.1:18081}"
BASE="http://$ADDR"
REPL="http://$ADDR_REPL"
WORK="$(mktemp -d)"
SERVER_PID=""
REPL_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$REPL_PID" ] && kill "$REPL_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    exit 1
}

cd "$(dirname "$0")/.."

echo "obs-smoke: building"
go build -o "$WORK/xgen" ./cmd/xgen
go build -o "$WORK/xserve" ./cmd/xserve
go build -o "$WORK/obscheck" ./cmd/obscheck

echo "obs-smoke: generating corpus"
"$WORK/xgen" -kind dblp -authors 200 -seed 42 -out "$WORK/dblp.xml"

echo "obs-smoke: starting xserve on $ADDR"
"$WORK/xserve" -xml "$WORK/dblp.xml" -addr "$ADDR" -slowlog 1ns \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || {
        cat "$WORK/server.log" >&2
        fail "xserve exited early"
    }
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || fail "xserve never became healthy"

echo "obs-smoke: querying (explain=1)"
EXPLAIN_BODY="$(curl -fsS "$BASE/search?q=online+databse&explain=1")" ||
    fail "explain query failed"
[[ "$EXPLAIN_BODY" == *'"explain"'* ]] ||
    fail "explain=1 response carries no explain key"
[[ "$EXPLAIN_BODY" == *'"name": "query"'* || "$EXPLAIN_BODY" == *'"name":"query"'* ]] ||
    fail "explain tree has no root query span"

PLAIN_BODY="$(curl -fsS "$BASE/search?q=online+databse")" ||
    fail "plain query failed"
[[ "$PLAIN_BODY" == *'"explain"'* ]] &&
    fail "no-explain response leaked an explain key"

echo "obs-smoke: validating /metrics exposition"
"$WORK/obscheck" -url "$BASE/metrics" -min-families 12 \
    -want xrefine_engine_queries_total,xrefine_engine_query_seconds,xrefine_refine_partitions_total,xrefine_slca_calls_total,xrefine_index_list_loads_total,xrefine_http_requests_total ||
    fail "obscheck rejected the exposition"

echo "obs-smoke: checking /debug/slowlog"
SLOWLOG_BODY="$(curl -fsS "$BASE/debug/slowlog")" ||
    fail "slowlog fetch failed"
[[ "$SLOWLOG_BODY" == *'"entries"'* ]] ||
    fail "slowlog ring unreachable or empty schema"

echo "obs-smoke: phase 2: replicated chaos flight-recorder checks"
"$WORK/xgen" -kind shards -xml "$WORK/dblp.xml" -shards 2 -replicas 2 \
    -shard-dir "$WORK/shards"
"$WORK/xgen" -kind workload -xml "$WORK/dblp.xml" -queries 40 -seed 9 \
    -out "$WORK/queries.txt"
# GOMAXPROCS > nproc so the hedge timer can preempt a CPU-bound scan on
# single-core CI runners: the stores are memory-resident after open, so
# attempt latency is pure compute and a lone P would never yield to the
# timer before the primary finishes.
GOMAXPROCS=4 "$WORK/xserve" -shards "$WORK/shards" -replicas 2 -addr "$ADDR_REPL" \
    -hedge-after 100us -chaos "jitter=1ms-3ms,seed=7" -trace-sample 1 \
    -slowlog 1ns >"$WORK/repl.log" 2>&1 &
REPL_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$REPL/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$REPL_PID" 2>/dev/null || {
        cat "$WORK/repl.log" >&2
        fail "replicated xserve exited early"
    }
    sleep 0.2
done
curl -fsS "$REPL/healthz" >/dev/null || fail "replicated xserve never became healthy"

# Distinct workload queries touch cold posting lists, keeping the
# attempts slow enough for the 100µs hedge delay; loop until a hedge
# shows up in the event ring.
HEDGED=""
QCOUNT=0
while IFS=$'\t' read -r q _; do
    QCOUNT=$((QCOUNT + 1))
    curl -fsS "$REPL/search?q=${q// /+}" >/dev/null ||
        fail "replicated query $QCOUNT ($q) failed"
    EVENTS="$(curl -fsS "$REPL/debug/events?kind=hedge-fire&limit=1")" ||
        fail "event dump fetch failed"
    if [[ "$EVENTS" == *'"hedge-fire"'* ]]; then
        HEDGED=yes
        break
    fi
done <"$WORK/queries.txt"
[ -n "$HEDGED" ] || fail "no hedge-fire event after $QCOUNT chaos-armed queries"

echo "obs-smoke: resolving an exemplar trace id"
OM_BODY="$(curl -fsS "$REPL/metrics?format=openmetrics")" ||
    fail "openmetrics scrape failed"
[[ "$OM_BODY" == *'# EOF'* ]] || fail "openmetrics exposition missing # EOF"
TID="$(printf '%s\n' "$OM_BODY" | grep -o 'trace_id="[0-9a-f]*"' | head -1 | cut -d'"' -f2)"
[ -n "$TID" ] || fail "no exemplar trace_id in the openmetrics exposition"
TRACE_BODY="$(curl -fsS "$REPL/debug/trace/$TID")" ||
    fail "exemplar trace $TID did not resolve at /debug/trace/"
[[ "$TRACE_BODY" == *'"trace"'* ]] ||
    fail "resolved trace $TID carries no span tree"

echo "obs-smoke: cross-checking /debug/events by trace id"
EV_BY_TRACE="$(curl -fsS "$REPL/debug/events?trace_id=$TID")" ||
    fail "event filter by trace_id failed"
[[ "$EV_BY_TRACE" == *'"admit"'* ]] ||
    fail "trace $TID has no admit event in the ring"

echo "obs-smoke: validating both replicated expositions"
"$WORK/obscheck" -url "$REPL/metrics" -min-families 12 \
    -want xrefine_replica_attempt_seconds,xrefine_build_info,xrefine_uptime_seconds,xrefine_slo_availability_burn_5m,xrefine_slo_latency_burn_1h,xrefine_http_requests_total ||
    fail "obscheck rejected the replicated Prometheus exposition"
"$WORK/obscheck" -url "$REPL/metrics?format=openmetrics" -min-families 12 \
    -want xrefine_replica_attempt_seconds,xrefine_http_request_seconds ||
    fail "obscheck rejected the OpenMetrics exemplar exposition"

echo "obs-smoke: checking /healthz SLO report"
HEALTH_BODY="$(curl -fsS "$REPL/healthz")" || fail "replicated healthz failed"
[[ "$HEALTH_BODY" == *'"slo"'* && "$HEALTH_BODY" == *'"availability_burn"'* ]] ||
    fail "healthz carries no SLO burn report"

echo "obs-smoke: PASS"
