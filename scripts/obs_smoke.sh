#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test, run by `make obs`
# and the CI observability job.
#
# Boots xserve on a generated corpus, then asserts the three ops
# surfaces actually work against a live server:
#   1. /metrics parses as Prometheus text exposition (via obscheck, the
#      in-tree strict parser) and carries the expected families;
#   2. /search?...&explain=1 returns a span tree, and the same query
#      without the flag leaks no explain key;
#   3. /debug/slowlog serves the traced ring.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    exit 1
}

cd "$(dirname "$0")/.."

echo "obs-smoke: building"
go build -o "$WORK/xgen" ./cmd/xgen
go build -o "$WORK/xserve" ./cmd/xserve
go build -o "$WORK/obscheck" ./cmd/obscheck

echo "obs-smoke: generating corpus"
"$WORK/xgen" -kind dblp -authors 200 -seed 42 -out "$WORK/dblp.xml"

echo "obs-smoke: starting xserve on $ADDR"
"$WORK/xserve" -xml "$WORK/dblp.xml" -addr "$ADDR" -slowlog 1ns \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || {
        cat "$WORK/server.log" >&2
        fail "xserve exited early"
    }
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || fail "xserve never became healthy"

echo "obs-smoke: querying (explain=1)"
EXPLAIN_BODY="$(curl -fsS "$BASE/search?q=online+databse&explain=1")" ||
    fail "explain query failed"
[[ "$EXPLAIN_BODY" == *'"explain"'* ]] ||
    fail "explain=1 response carries no explain key"
[[ "$EXPLAIN_BODY" == *'"name": "query"'* || "$EXPLAIN_BODY" == *'"name":"query"'* ]] ||
    fail "explain tree has no root query span"

PLAIN_BODY="$(curl -fsS "$BASE/search?q=online+databse")" ||
    fail "plain query failed"
[[ "$PLAIN_BODY" == *'"explain"'* ]] &&
    fail "no-explain response leaked an explain key"

echo "obs-smoke: validating /metrics exposition"
"$WORK/obscheck" -url "$BASE/metrics" -min-families 12 \
    -want xrefine_engine_queries_total,xrefine_engine_query_seconds,xrefine_refine_partitions_total,xrefine_slca_calls_total,xrefine_index_list_loads_total,xrefine_http_requests_total ||
    fail "obscheck rejected the exposition"

echo "obs-smoke: checking /debug/slowlog"
SLOWLOG_BODY="$(curl -fsS "$BASE/debug/slowlog")" ||
    fail "slowlog fetch failed"
[[ "$SLOWLOG_BODY" == *'"entries"'* ]] ||
    fail "slowlog ring unreachable or empty schema"

echo "obs-smoke: PASS"
