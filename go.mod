module xrefine

go 1.22
