package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrefine/internal/mutate"
	"xrefine/internal/xmltree"
)

func TestRunDBLPToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-kind", "dblp", "-authors", "10", "-seed", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(b.String(), nil)
	if err != nil {
		t.Fatalf("generated dblp does not parse: %v", err)
	}
	if doc.Root.Tag != "bib" || len(doc.Partitions()) != 10 {
		t.Errorf("doc shape: root %s, %d partitions", doc.Root.Tag, len(doc.Partitions()))
	}
}

func TestRunBaseballToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bb.xml")
	if err := run([]string{"-kind", "baseball", "-teams", "4", "-out", out}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmltree.ParseString(string(data), nil); err != nil {
		t.Fatalf("generated baseball does not parse: %v", err)
	}
}

func TestRunWorkload(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "d.xml")
	if err := run([]string{"-kind", "dblp", "-authors", "40", "-out", xml}, nil); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-kind", "workload", "-xml", xml, "-queries", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("workload lines = %d", len(lines))
	}
	for _, line := range lines {
		if parts := strings.Split(line, "\t"); len(parts) != 3 {
			t.Errorf("bad workload line %q", line)
		}
	}
}

func TestRunUpdatesAlongsideCorpus(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "d.xml")
	if err := run([]string{"-kind", "dblp", "-authors", "30", "-out", xml, "-updates", "10", "-update-batch", "4"}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(xml + ".updates")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := mutate.ReadBatchFile(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Ops) != 10 {
		t.Fatalf("update ops = %d, want 10", len(batch.Ops))
	}
	if !strings.Contains(string(data), "# batch 1") {
		t.Error("batch separators missing")
	}

	// The standalone form derives the same workload from the same corpus
	// and seed.
	var standalone strings.Builder
	if err := run([]string{"-kind", "updates", "-xml", xml, "-updates", "10", "-update-batch", "4"}, &standalone); err != nil {
		t.Fatal(err)
	}
	if standalone.String() != string(data) {
		t.Error("standalone -kind updates diverged from the ride-along batch file")
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "bogus"},
		{"-kind", "workload"}, // missing -xml
		{"-kind", "workload", "-xml", "/nonexistent.xml"},
		{"-kind", "updates"},                    // missing -xml
		{"-kind", "updates", "-xml", "/no.xml"}, // unreadable document
		{"-kind", "dblp", "-updates", "5"},      // -updates without -out
		{"-badflag"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
