// Command xgen generates the synthetic evaluation datasets: a DBLP-like
// bibliography and a Baseball-like season document (the substitutes for
// the paper's real datasets), plus optional corruption workloads.
//
// Usage:
//
//	xgen -kind dblp -authors 2000 -seed 42 -out dblp.xml
//	xgen -kind dblp -authors 2000 -out dblp.xml -updates 40      also emit dblp.xml.updates
//	xgen -kind baseball -teams 30 -out baseball.xml
//	xgen -kind workload -xml dblp.xml -queries 50 -out queries.txt
//	xgen -kind updates -xml dblp.xml -updates 40 -out updates.txt
//	xgen -kind dblp -authors 2000 -shards 4 -shard-dir dblp-shards
//	xgen -kind shards -xml dblp.xml -shards 4 -shard-mode hash -shard-dir dblp-shards
//	xgen -kind shards -xml dblp.xml -shards 2 -replicas 3 -shard-dir dblp-shards
//
// The -updates N flag derives a deterministic batch file of N insert/delete
// operations valid against the generated (or -xml supplied) document, in
// the one-op-per-line JSON form consumed by xrefine apply and POST /update.
//
// The -shards N flag splits the corpus across N independent shard stores
// (shard-<i>.kv plus a manifest.json) in -shard-dir, partition-granular,
// by contiguous range (-shard-mode range, the default) or by ordinal hash
// (-shard-mode hash). With -replicas R every shard is written as R
// identical stores (shard-<i>.kv plus shard-<i>.r<j>.kv), each with its
// own WAL, so the router can serve each shard from an R-way replica set
// with hedged reads and failover. The directory is served scatter-gather
// by xserve -shards and queried by xrefine -shards, with output
// byte-identical to a monolithic index over the unsplit corpus.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xrefine/internal/datagen"
	"xrefine/internal/mutate"
	"xrefine/internal/shard"
	"xrefine/internal/storage"
	"xrefine/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xgen:", err)
		os.Exit(1)
	}
}

// run executes the generator with the given arguments; output goes to the
// -out file or to defaultOut.
func run(args []string, defaultOut io.Writer) error {
	fs := flag.NewFlagSet("xgen", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "dblp", "dataset kind: dblp | baseball | workload | updates | shards")
		out       = fs.String("out", "", "output file (default stdout)")
		seed      = fs.Int64("seed", 42, "random seed")
		authors   = fs.Int("authors", 2000, "dblp: number of authors")
		teams     = fs.Int("teams", 30, "baseball: number of teams")
		xmlPath   = fs.String("xml", "", "workload/updates: document to derive from")
		queries   = fs.Int("queries", 50, "workload: number of queries")
		ops       = fs.Int("ops", 1, "workload: corruptions per query")
		updates   = fs.Int("updates", 0, "emit N update operations (with -kind updates, or alongside a generated corpus)")
		updBatch  = fs.Int("update-batch", 4, "operations per update batch")
		shards    = fs.Int("shards", 0, "split the corpus into N shard stores (with -kind shards, or alongside a generated corpus)")
		shardDir  = fs.String("shard-dir", "", "directory for the shard stores and manifest (required with -shards)")
		shardMode = fs.String("shard-mode", "range", "partition placement: range | hash")
		replicas  = fs.Int("replicas", 1, "replicas per shard: each shard is written as R identical stores with their own WALs")
		backend   = fs.String("backend", "", "storage engine for shard stores: btree (default) | log")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := defaultOut
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "dblp", "baseball":
		var corpus strings.Builder
		var err error
		if *kind == "dblp" {
			err = datagen.DBLP(&corpus, datagen.DBLPConfig{Authors: *authors, Seed: *seed})
		} else {
			err = datagen.Baseball(&corpus, datagen.BaseballConfig{Teams: *teams, Seed: *seed})
		}
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, corpus.String()); err != nil {
			return err
		}
		if *updates <= 0 && *shards <= 0 {
			return nil
		}
		doc, err := xmltree.ParseString(corpus.String(), nil)
		if err != nil {
			return err
		}
		if *updates > 0 {
			// The update workload rides along in <out>.updates, so corpus
			// and batches derived from it always travel as a pair.
			if *out == "" {
				return fmt.Errorf("-updates alongside a corpus needs -out (batches go to <out>.updates)")
			}
			uf, err := os.Create(*out + ".updates")
			if err != nil {
				return err
			}
			defer uf.Close()
			if err := writeUpdates(uf, doc, *updates, *updBatch, *seed); err != nil {
				return err
			}
		}
		if *shards > 0 {
			return writeShards(doc, *shards, *shardMode, *shardDir, *replicas, *backend)
		}
		return nil
	case "shards":
		if *xmlPath == "" {
			return fmt.Errorf("shards needs -xml")
		}
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f, nil)
		f.Close()
		if err != nil {
			return err
		}
		return writeShards(doc, *shards, *shardMode, *shardDir, *replicas, *backend)
	case "updates":
		if *xmlPath == "" {
			return fmt.Errorf("updates needs -xml")
		}
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f, nil)
		f.Close()
		if err != nil {
			return err
		}
		if *updates <= 0 {
			return fmt.Errorf("updates needs -updates N")
		}
		return writeUpdates(w, doc, *updates, *updBatch, *seed)
	case "workload":
		if *xmlPath == "" {
			return fmt.Errorf("workload needs -xml")
		}
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f, nil)
		f.Close()
		if err != nil {
			return err
		}
		cases, err := datagen.Workload(doc, datagen.WorkloadConfig{
			Seed: *seed, Queries: *queries, OpsPerQuery: *ops,
		})
		if err != nil {
			return err
		}
		for _, cs := range cases {
			opNames := make([]string, len(cs.Applied))
			for i, op := range cs.Applied {
				opNames[i] = op.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n",
				strings.Join(cs.Corrupted, " "),
				strings.Join(cs.Intended, " "),
				strings.Join(opNames, "+"))
		}
		return nil
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

// writeShards splits doc into n shard stores (R replica copies each) plus
// a manifest under dir.
func writeShards(doc *xmltree.Document, n int, mode, dir string, replicas int, backend string) error {
	if n <= 0 {
		return fmt.Errorf("shards needs -shards N")
	}
	if dir == "" {
		return fmt.Errorf("-shards needs -shard-dir")
	}
	if replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1")
	}
	m, err := shard.ParseMode(mode)
	if err != nil {
		return err
	}
	kind := storage.DefaultKind()
	if backend != "" {
		if kind, err = storage.ParseKind(backend); err != nil {
			return err
		}
	}
	_, err = shard.WriteReplicatedStoresBackend(doc, dir, n, m, replicas, kind)
	return err
}

// writeUpdates derives n operations in perBatch-sized batches and writes
// them one per line, batches separated by comment markers. The whole file
// applies as one batch (xrefine apply) and the markers let soak/bench
// tooling split it back into the original batches.
func writeUpdates(w io.Writer, doc *xmltree.Document, n, perBatch int, seed int64) error {
	if perBatch <= 0 {
		perBatch = 4
	}
	batches, err := datagen.Updates(doc, datagen.UpdatesConfig{
		Batches: (n + perBatch - 1) / perBatch,
		Ops:     perBatch,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	left := n
	for i, b := range batches {
		if len(b.Ops) > left {
			b.Ops = b.Ops[:left]
		}
		if len(b.Ops) == 0 {
			break
		}
		if _, err := fmt.Fprintf(w, "# batch %d\n", i); err != nil {
			return err
		}
		if err := mutate.WriteBatchFile(w, b); err != nil {
			return err
		}
		left -= len(b.Ops)
	}
	return nil
}
