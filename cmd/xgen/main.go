// Command xgen generates the synthetic evaluation datasets: a DBLP-like
// bibliography and a Baseball-like season document (the substitutes for
// the paper's real datasets), plus optional corruption workloads.
//
// Usage:
//
//	xgen -kind dblp -authors 2000 -seed 42 -out dblp.xml
//	xgen -kind baseball -teams 30 -out baseball.xml
//	xgen -kind workload -xml dblp.xml -queries 50 -out queries.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xrefine/internal/datagen"
	"xrefine/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xgen:", err)
		os.Exit(1)
	}
}

// run executes the generator with the given arguments; output goes to the
// -out file or to defaultOut.
func run(args []string, defaultOut io.Writer) error {
	fs := flag.NewFlagSet("xgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "dblp", "dataset kind: dblp | baseball | workload")
		out     = fs.String("out", "", "output file (default stdout)")
		seed    = fs.Int64("seed", 42, "random seed")
		authors = fs.Int("authors", 2000, "dblp: number of authors")
		teams   = fs.Int("teams", 30, "baseball: number of teams")
		xmlPath = fs.String("xml", "", "workload: document to sample queries from")
		queries = fs.Int("queries", 50, "workload: number of queries")
		ops     = fs.Int("ops", 1, "workload: corruptions per query")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := defaultOut
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "dblp":
		return datagen.DBLP(w, datagen.DBLPConfig{Authors: *authors, Seed: *seed})
	case "baseball":
		return datagen.Baseball(w, datagen.BaseballConfig{Teams: *teams, Seed: *seed})
	case "workload":
		if *xmlPath == "" {
			return fmt.Errorf("workload needs -xml")
		}
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f, nil)
		f.Close()
		if err != nil {
			return err
		}
		cases, err := datagen.Workload(doc, datagen.WorkloadConfig{
			Seed: *seed, Queries: *queries, OpsPerQuery: *ops,
		})
		if err != nil {
			return err
		}
		for _, cs := range cases {
			opNames := make([]string, len(cs.Applied))
			for i, op := range cs.Applied {
				opNames[i] = op.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n",
				strings.Join(cs.Corrupted, " "),
				strings.Join(cs.Intended, " "),
				strings.Join(opNames, "+"))
		}
		return nil
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}
