// Command obscheck validates a Prometheus text exposition — the gate the
// CI observability job and `make obs` run against a live /metrics scrape.
//
// Usage:
//
//	obscheck -url http://localhost:8080/metrics
//	obscheck -file metrics.txt
//	xserve ... & curl -s localhost:8080/metrics | obscheck
//
// It parses the payload with the engine's in-tree exposition parser
// (strict line grammar: names, label quoting, TYPE declarations), then
// checks that at least -min-families distinct metric families are present
// and that every -want family (comma-separated) appears. Any violation
// prints a diagnostic and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"xrefine/internal/obs"
)

func main() {
	var (
		url         = flag.String("url", "", "scrape this /metrics URL (default: read stdin)")
		file        = flag.String("file", "", "read exposition from this file instead")
		minFamilies = flag.Int("min-families", 12, "fail unless at least this many distinct metric families are present")
		want        = flag.String("want", "", "comma-separated family names that must be present")
		timeout     = flag.Duration("timeout", 10*time.Second, "HTTP scrape timeout")
	)
	flag.Parse()

	src, err := open(*url, *file, *timeout)
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	exp, err := obs.ParsePrometheus(src)
	if err != nil {
		fatal(fmt.Errorf("malformed exposition: %w", err))
	}
	// Histogram shape checks: cumulative bucket monotonicity, a terminal
	// +Inf bucket per series, and well-formed exemplars (trace_id label,
	// value inside the bucket's range). These hold for both the default
	// exposition and the OpenMetrics form with exemplars.
	if err := exp.CheckHistograms(); err != nil {
		fatal(fmt.Errorf("bad histogram: %w", err))
	}
	fams := exp.Families()
	if len(fams) < *minFamilies {
		sort.Strings(fams)
		fatal(fmt.Errorf("only %d metric families (need >= %d): %s",
			len(fams), *minFamilies, strings.Join(fams, " ")))
	}
	if *want != "" {
		have := make(map[string]bool, len(fams))
		for _, f := range fams {
			have[f] = true
		}
		var missing []string
		for _, w := range strings.Split(*want, ",") {
			if w = strings.TrimSpace(w); w != "" && !have[w] {
				missing = append(missing, w)
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("missing required families: %s", strings.Join(missing, " ")))
		}
	}
	fmt.Printf("ok: %d samples, %d families\n", len(exp.Samples), len(fams))
}

// open resolves the input source: URL scrape, file, or stdin.
func open(url, file string, timeout time.Duration) (io.ReadCloser, error) {
	switch {
	case url != "" && file != "":
		return nil, fmt.Errorf("-url and -file are mutually exclusive")
	case url != "":
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		return resp.Body, nil
	case file != "":
		return os.Open(file)
	default:
		return io.NopCloser(os.Stdin), nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
