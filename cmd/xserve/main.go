// Command xserve runs the XRefine HTTP query server over an XML document
// or a prebuilt index.
//
// Usage:
//
//	xserve -xml dblp.xml -addr :8080
//	xserve -index dblp.kv -addr :8080 -parallel 4
//
// Endpoints:
//
//	GET /search?q=online+databse&k=3&strategy=partition|sle|stack&parallel=N
//	GET /narrow?q=database&max=50&k=3    (requires -xml)
//	GET /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"xrefine"
	"xrefine/internal/core"
	"xrefine/internal/server"
)

func main() {
	var (
		xmlPath   = flag.String("xml", "", "XML document to index and serve")
		indexPath = flag.String("index", "", "prebuilt index file to serve")
		addr      = flag.String("addr", ":8080", "listen address")
		parallel  = flag.Int("parallel", 0, "partition-walk workers per query (0 = all cores, 1 = sequential)")
	)
	flag.Parse()

	var cfg *core.Config
	if *parallel > 0 {
		cfg = &core.Config{Parallelism: *parallel}
	}
	var eng *core.Engine
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := xrefine.ParseXML(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		eng = core.NewFromDocument(doc, cfg)
		log.Printf("indexed %s: %d nodes", *xmlPath, doc.NodeCount)
	case *indexPath != "":
		store, err := xrefine.OpenStore(*indexPath, true)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		eng, err = core.Open(store, cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("opened index %s", *indexPath)
	default:
		fmt.Fprintln(os.Stderr, "xserve: need -xml or -index")
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(eng),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
