// Command xserve runs the XRefine HTTP query server over an XML document
// or a prebuilt index.
//
// Usage:
//
//	xserve -xml dblp.xml -addr :8080
//	xserve -index dblp.kv -addr :8080 -parallel 4
//	xserve -index dblp.kv -timeout 2s -budget 5000000 -max-inflight 64
//	xserve -index dblp.kv -live
//	xserve -shards dblp-shards -addr :8080
//	xserve -shards dblp-shards -live
//	xserve -index dblp.kv -addr :8080 -wire :7070
//
// Endpoints:
//
//	GET /search?q=online+databse&k=3&strategy=partition|sle|stack&parallel=N&explain=1
//	GET /narrow?q=database&max=50&k=3    (requires -xml)
//	POST /update                          (requires -live or -xml; see README)
//	GET /healthz
//	GET /metrics                          (Prometheus text format)
//	GET /debug/slowlog                    (requires -slowlog)
//	GET /debug/pprof/                     (requires -pprof)
//
// With -timeout or -budget set, a query that overruns returns the partial
// results found so far with "degraded": true instead of an error. With
// -max-inflight set, excess concurrent requests are shed with 503 and a
// Retry-After header. SIGINT/SIGTERM drain in-flight requests before exit.
//
// With -live set, the index is opened read-write with a write-ahead log
// (default <index>.wal) and POST /update applies insert/delete batches as
// durable epoch commits; without it an -index server serves a frozen
// snapshot and /update is rejected. An -xml server accepts updates too,
// but in memory only — they vanish on restart.
//
// With -slowlog set, every query is traced and those at or over the
// threshold keep their span tree in a ring buffer served at
// /debug/slowlog. /healthz, /metrics, and the debug surfaces bypass the
// admission gate and the per-request timeout, so they answer even while
// the query path is saturated.
//
// With -shards set to a directory written by xgen -shards, the server
// hosts every shard store behind a scatter-gather router whose responses
// are byte-identical to a monolithic index over the unsplit corpus.
// /healthz reports per-shard epochs, /search?explain=1 shows per-shard
// fan-out spans, and with -live each POST /update batch is routed to the
// shard owning its target (batches spanning shards are rejected; split
// them per shard).
//
// A replicated directory (xgen -replicas R) serves each shard from an
// R-way replica set: scans pick the healthiest replica (EWMA latency +
// circuit breaker), -hedge-after races a second replica against a slow
// primary, failed attempts retry across the set, and -live writes route
// to every replica with epoch reconciliation quarantining and catching up
// any copy that misses a commit. /healthz gains a per-replica health
// table. -chaos arms seeded probabilistic store faults (error rate and/or
// latency jitter) on every replica — the soak mode the replica fault
// matrix in CI runs against.
//
//	xserve -shards dblp-shards -replicas 2 -hedge-after 20ms -live
//	xserve -shards dblp-shards -chaos rate=0.002,jitter=1ms-3ms
//
// With -wire set, the same backend additionally serves the length-
// prefixed binary protocol (persistent pipelined connections; see
// ARCHITECTURE.md §22) on that address. Query payloads are byte-identical
// to the HTTP /search bodies, the -timeout and -max-inflight limits
// apply equally, and SIGINT/SIGTERM drain both surfaces together.
// `xrefine search -wire host:port <query>` is the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xrefine"
	"xrefine/internal/core"
	"xrefine/internal/obs"
	"xrefine/internal/server"
	"xrefine/internal/shard"
	"xrefine/internal/wire"
)

func main() {
	var (
		xmlPath     = flag.String("xml", "", "XML document to index and serve")
		indexPath   = flag.String("index", "", "prebuilt index file to serve")
		addr        = flag.String("addr", ":8080", "listen address")
		wireAddr    = flag.String("wire", "", "also serve the binary wire protocol on this address, e.g. :7070 (same backend, same limits)")
		parallel    = flag.Int("parallel", 0, "partition-walk workers per query (0 = all cores, 1 = sequential)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline; overruns return partial results flagged degraded (0 = none)")
		budget      = flag.Int("budget", 0, "per-query posting budget; exhaustion degrades the response (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently-handled query requests; excess is shed with 503 (0 = unbounded)")
		drain       = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
		slowlog     = flag.Duration("slowlog", 0, "slow-query threshold; queries at or over it are kept at /debug/slowlog (0 = off)")
		slowlogCap  = flag.Int("slowlog-cap", 0, "slow-query ring capacity (0 = 128)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		live        = flag.Bool("live", false, "open -index read-write and accept POST /update (WAL-backed epoch commits)")
		walPath     = flag.String("wal", "", "write-ahead log file for -live (default <index>.wal)")
		storeKind   = flag.String("backend", "", "storage engine of -index: btree | log (default: detect from the store layout)")
		shardDir    = flag.String("shards", "", "shard directory (xgen -shards) to serve scatter-gather")
		replicas    = flag.Int("replicas", 0, "replicas per shard to attach from the manifest (0 = all available)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "hedge a slow shard scan onto the next replica after this delay (0 = off)")
		chaosSpec   = flag.String("chaos", "", "arm probabilistic store faults on every replica, e.g. rate=0.01,jitter=1ms-5ms,seed=7")
		traceSample = flag.Int("trace-sample", 0, "retain every n-th query's trace at /debug/trace/<id> with histogram exemplars (0 = every 64th, negative = off)")
		traceCap    = flag.Int("trace-cap", 0, "retained-trace ring capacity (0 = 512)")
		sloAvail    = flag.Float64("slo-availability", 0, "availability objective as a fraction, e.g. 0.999 (0 = default 0.999)")
		sloLatObj   = flag.Float64("slo-latency", 0, "latency objective as a fraction, e.g. 0.99 (0 = default 0.99)")
		sloTarget   = flag.Duration("slo-target", 0, "latency objective threshold (0 = default 250ms)")
	)
	flag.Parse()

	cfg := &core.Config{
		Parallelism:   *parallel,
		Timeout:       *timeout,
		PostingBudget: *budget,
	}
	var backend server.Backend
	var eng *core.Engine
	switch {
	case *shardDir != "":
		opts := &shard.Options{
			Live:       *live,
			Config:     cfg,
			Replicas:   *replicas,
			HedgeAfter: *hedgeAfter,
		}
		if *chaosSpec != "" {
			c, err := shard.ParseChaos(*chaosSpec)
			if err != nil {
				log.Fatal(err)
			}
			opts.Chaos = c
			log.Printf("chaos armed: %s", *chaosSpec)
		}
		r, err := shard.Open(*shardDir, opts)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		backend = r
		epochs := r.ShardEpochs()
		var sum uint64
		for _, e := range epochs {
			sum += e
		}
		log.Printf("opened %d shard(s) x %d replica(s) from %s at epoch %d (live=%v hedge=%v)",
			r.Shards(), r.Replicas(), *shardDir, sum, *live, *hedgeAfter)
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := xrefine.ParseXML(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		eng = core.NewFromDocument(doc, cfg)
		log.Printf("indexed %s: %d nodes", *xmlPath, doc.NodeCount)
	case *indexPath != "":
		store, err := xrefine.OpenStoreKind(*storeKind, *indexPath, !*live)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		if *live {
			wal := *walPath
			if wal == "" {
				wal = *indexPath + ".wal"
			}
			eng, err = core.OpenLive(store, wal, cfg)
			if err != nil {
				log.Fatal(err)
			}
			defer eng.Close()
			st := eng.UpdateStats()
			if st.ReplayedBatches > 0 {
				log.Printf("replayed %d update batch(es) from %s", st.ReplayedBatches, wal)
			}
			log.Printf("opened live index %s at epoch %d (wal %s)", *indexPath, st.Epoch, wal)
		} else {
			eng, err = core.Open(store, cfg)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("opened index %s (read-only)", *indexPath)
		}
	default:
		fmt.Fprintln(os.Stderr, "xserve: need -xml, -index, or -shards")
		os.Exit(2)
	}
	if backend == nil {
		backend = eng
	}

	h := server.NewFromBackend(backend, server.Config{
		Timeout:            *timeout,
		MaxInFlight:        *maxInflight,
		SlowLogThreshold:   *slowlog,
		SlowLogCapacity:    *slowlogCap,
		EnablePprof:        *pprofOn,
		TraceSampleEvery:   *traceSample,
		TraceStoreCapacity: *traceCap,
		SLO: obs.SLOOptions{
			AvailabilityObjective: *sloAvail,
			LatencyObjective:      *sloLatObj,
			LatencyTarget:         *sloTarget,
		},
	})
	// WriteTimeout leaves headroom over the query deadline so degraded
	// responses still get written rather than cut off mid-body.
	writeTimeout := 30 * time.Second
	if *timeout > 0 && *timeout+5*time.Second > writeTimeout {
		writeTimeout = *timeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	// The binary surface shares the backend with HTTP — same engine, same
	// admission limits, same flight recorder — so the two answer
	// identically and drain together.
	var wsrv *wire.Server
	wireErrCh := make(chan error, 1)
	if *wireAddr != "" {
		wsrv = wire.NewServer(backend, wire.Options{
			Timeout:     *timeout,
			MaxInFlight: *maxInflight,
		})
		wl, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		go func() { wireErrCh <- wsrv.Serve(wl) }()
		log.Printf("serving wire protocol on %s", *wireAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case err := <-wireErrCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v: draining for up to %v", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		incomplete := false
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("http drain incomplete: %v", err)
			srv.Close()
			incomplete = true
		}
		if wsrv != nil {
			if err := wsrv.Shutdown(ctx); err != nil {
				log.Printf("wire drain incomplete: %v", err)
				incomplete = true
			}
		}
		if incomplete {
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
	// ListenAndServe returns ErrServerClosed after Shutdown; anything else
	// would have been fatal above.
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if wsrv != nil {
		if err := <-wireErrCh; err != nil && !errors.Is(err, wire.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
