package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrefine"
)

const statDoc = `<bib>
  <author><publications>
    <paper><title>database database systems</title><year>2003</year></paper>
  </publications></author>
  <author><publications>
    <paper><title>database search</title><year>2005</year></paper>
  </publications></author>
</bib>`

func TestRunOnXML(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.xml")
	if err := os.WriteFile(path, []byte(statDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-xml", path, "-top", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"nodes:", "partitions:  2", "vocabulary:", "database", "bib/author/publications/paper/title"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunOnIndex(t *testing.T) {
	dir := t.TempDir()
	eng, err := xrefine.NewFromXML(strings.NewReader(statDoc), nil)
	if err != nil {
		t.Fatal(err)
	}
	kv := filepath.Join(dir, "d.kv")
	store, err := xrefine.OpenStore(kv, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-index", kv}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"store:", "epoch:       0", "wal:         none"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}

	// A leftover WAL beside the index is surfaced as pending replay work.
	if err := os.WriteFile(kv+".wal", []byte("xxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"-index", kv}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wal:         4 bytes pending replay") {
		t.Errorf("pending wal not reported:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-xml", "/nonexistent.xml"},
		{"-index", "/nonexistent.kv"},
		{"-badflag"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
