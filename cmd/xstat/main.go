// Command xstat inspects an XML document or a prebuilt index: node and
// type counts, vocabulary size, the most frequent keywords, and the
// physical statistics of the index store — the numbers one checks before
// trusting benchmark output.
//
// Usage:
//
//	xstat -xml dblp.xml [-top 15]
//	xstat -index dblp.kv [-top 15]
//	xstat -index dblp.kv -blocks
//	xstat -shards dblp-shards
//
// With -shards, the per-shard layout of a directory written by
// xgen -shards is tabulated instead: each shard's node and partition
// counts, committed epoch, store size and WAL state, with totals.
//
// With -blocks, the physical shape of the block-compressed posting
// storage is reported: per-term block counts, encoded versus
// materialized bytes, and a histogram of per-term compression ratios.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"xrefine/internal/index"
	"xrefine/internal/kvstore"
	"xrefine/internal/obs"
	"xrefine/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xstat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("xstat", flag.ContinueOnError)
	var (
		xmlPath   = fs.String("xml", "", "XML document to inspect")
		indexPath = fs.String("index", "", "index file to inspect")
		shardDir  = fs.String("shards", "", "shard directory (xgen -shards) to inspect")
		top       = fs.Int("top", 15, "how many top keywords to list")
		blocks    = fs.Bool("blocks", false, "report block-compressed posting storage instead")
		slo       = fs.Bool("slo", false, "report a running server's SLO burn rates instead (needs -url)")
		url       = fs.String("url", "", "base URL of a running xserve, e.g. http://localhost:8080")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slo {
		if *url == "" {
			return fmt.Errorf("-slo needs -url pointing at a running server")
		}
		return reportSLO(w, *url)
	}
	if *shardDir != "" {
		return reportShards(w, *shardDir)
	}
	var ix *index.Index
	var storeStats *kvstore.Stats
	var epoch uint64
	var walBytes int64 = -1
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ix, err = index.BuildStream(f, nil)
		if err != nil {
			return err
		}
	case *indexPath != "":
		store, err := kvstore.Open(*indexPath, &kvstore.Options{ReadOnly: true})
		if err != nil {
			return err
		}
		defer store.Close()
		ix, err = index.Load(store)
		if err != nil {
			return err
		}
		st := store.Stats()
		storeStats = &st
		epoch = store.Epoch()
		// A write-ahead log beside the index means the store takes live
		// updates; a non-empty one means the last writer died mid-commit
		// and the next OpenLive will replay it.
		if fi, err := os.Stat(*indexPath + ".wal"); err == nil {
			walBytes = fi.Size()
		}
	default:
		return fmt.Errorf("need -xml, -index, or -shards")
	}
	if *blocks {
		return reportBlocks(w, ix, *top)
	}
	return report(w, ix, storeStats, epoch, walBytes, *top)
}

// reportBlocks tabulates the physical shape of the block-compressed
// posting storage: the heaviest terms by encoded footprint, corpus-wide
// totals, and a histogram of per-term compression ratios (materialized
// bytes over encoded resident bytes). Short lists compress worst — a
// lone posting pays the full skip-table entry — so the histogram's low
// buckets are dominated by rare terms and the totals by frequent ones.
func reportBlocks(w io.Writer, ix *index.Index, top int) error {
	type row struct {
		term                   string
		postings, blocks       int
		encoded, raw, resident int
	}
	rows := make([]row, 0, len(ix.Vocabulary()))
	var totPost, totBlocks, totEnc, totRaw, totRes int
	for _, term := range ix.Vocabulary() {
		l, err := ix.List(term)
		if err != nil {
			return fmt.Errorf("list %q: %w", term, err)
		}
		r := row{
			term:     term,
			postings: l.Len(),
			blocks:   l.BlockCount(),
			encoded:  l.EncodedBytes(),
			raw:      l.LegacyBytes(),
			resident: l.MemoryBytes(),
		}
		rows = append(rows, r)
		totPost += r.postings
		totBlocks += r.blocks
		totEnc += r.encoded
		totRaw += r.raw
		totRes += r.resident
	}
	fmt.Fprintf(w, "terms:       %d\n", len(rows))
	fmt.Fprintf(w, "postings:    %d in %d blocks\n", totPost, totBlocks)
	fmt.Fprintf(w, "encoded:     %d bytes payload, %d resident (payload + skip + types)\n", totEnc, totRes)
	fmt.Fprintf(w, "raw:         %d bytes materialized\n", totRaw)
	if totRes > 0 {
		fmt.Fprintf(w, "compression: %.2fx (%.1f B/posting resident)\n",
			float64(totRaw)/float64(totRes), float64(totRes)/float64(totPost))
	}

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].encoded != rows[j].encoded {
			return rows[i].encoded > rows[j].encoded
		}
		return rows[i].term < rows[j].term
	})
	n := top
	if n > len(rows) {
		n = len(rows)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nterm\tpostings\tblocks\tencoded B\traw B\tratio")
	for _, r := range rows[:n] {
		ratio := 0.0
		if r.resident > 0 {
			ratio = float64(r.raw) / float64(r.resident)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2fx\n",
			r.term, r.postings, r.blocks, r.encoded, r.raw, ratio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ratio histogram over terms.
	bounds := []float64{1, 2, 3, 4, 6, 8, 12}
	labels := []string{"<1x", "1-2x", "2-3x", "3-4x", "4-6x", "6-8x", "8-12x", ">=12x"}
	counts := make([]int, len(labels))
	for _, r := range rows {
		if r.resident == 0 {
			continue
		}
		ratio := float64(r.raw) / float64(r.resident)
		b := sort.SearchFloat64s(bounds, ratio)
		if b < len(bounds) && ratio == bounds[b] {
			b++
		}
		counts[b]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ncompression ratio\tterms\t")
	for i, lab := range labels {
		bar := strings.Repeat("#", counts[i]*40/max)
		fmt.Fprintf(tw, "%s\t%d\t%s\n", lab, counts[i], bar)
	}
	return tw.Flush()
}

// reportShards tabulates the layout of a shard directory: one row per
// shard plus totals. Node totals overcount the shared corpus root (every
// shard stores it), which is why the monolithic numbers come from
// xstat -index on the unsplit corpus instead.
func reportShards(w io.Writer, dir string) error {
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shards:      %d (mode %s)\n", len(man.Shards), man.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nshard\tnodes\tpartitions\tepoch\tbytes\twal")
	var nodes, parts int
	var epochs uint64
	var bytes int64
	for _, e := range man.Shards {
		store, err := kvstore.Open(filepath.Join(dir, e.Store), &kvstore.Options{ReadOnly: true})
		if err != nil {
			return err
		}
		ix, err := index.Load(store)
		if err != nil {
			store.Close()
			return err
		}
		st := store.Stats()
		epoch := store.Epoch()
		if err := store.Close(); err != nil {
			return err
		}
		wal := "none"
		if fi, err := os.Stat(filepath.Join(dir, e.WAL)); err == nil {
			switch {
			case fi.Size() == 0:
				wal = "empty"
			default:
				wal = fmt.Sprintf("%d bytes pending", fi.Size())
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			e.Store, ix.NodeCount, len(ix.PartitionRoots()), epoch, st.FileSize, wal)
		nodes += ix.NodeCount
		parts += len(ix.PartitionRoots())
		epochs += epoch
		bytes += st.FileSize
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t\n", nodes, parts, epochs, bytes)
	return tw.Flush()
}

func report(w io.Writer, ix *index.Index, store *kvstore.Stats, epoch uint64, walBytes int64, top int) error {
	vocab := ix.Vocabulary()
	fmt.Fprintf(w, "nodes:       %d\n", ix.NodeCount)
	fmt.Fprintf(w, "node types:  %d\n", ix.Types.Len())
	fmt.Fprintf(w, "partitions:  %d\n", len(ix.PartitionRoots()))
	fmt.Fprintf(w, "vocabulary:  %d terms\n", len(vocab))
	if store != nil {
		fmt.Fprintf(w, "store:       %d keys, %d pages (%d free), %d bytes\n",
			store.Keys, store.Pages, store.FreePages, store.FileSize)
		fmt.Fprintf(w, "epoch:       %d\n", epoch)
		switch {
		case walBytes < 0:
			fmt.Fprintf(w, "wal:         none\n")
		case walBytes == 0:
			fmt.Fprintf(w, "wal:         empty (all batches committed)\n")
		default:
			fmt.Fprintf(w, "wal:         %d bytes pending replay\n", walBytes)
		}
	}

	type tf struct {
		term string
		n    int
	}
	freqs := make([]tf, 0, len(vocab))
	for _, term := range vocab {
		freqs = append(freqs, tf{term: term, n: ix.ListLen(term)})
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].n != freqs[j].n {
			return freqs[i].n > freqs[j].n
		}
		return freqs[i].term < freqs[j].term
	})
	if top > len(freqs) {
		top = len(freqs)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ntop keywords\tpostings")
	for _, f := range freqs[:top] {
		fmt.Fprintf(tw, "%s\t%d\n", f.term, f.n)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nnode type\tcount\tdistinct terms")
	for _, ty := range ix.Types.SortTypesByPath() {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", ty.Path(), ix.NT(ty), ix.GT(ty))
	}
	return tw.Flush()
}

// reportSLO fetches a running server's /healthz and renders the burn-rate
// report under its "slo" key — the remote half of `xrefine slo`.
func reportSLO(w io.Writer, base string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: %s", resp.Status)
	}
	var body struct {
		SLO *obs.SLOReport `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decode /healthz: %w", err)
	}
	if body.SLO == nil {
		return fmt.Errorf("server reports no SLO data (older build?)")
	}
	obs.WriteSLOReport(w, *body.SLO)
	return nil
}
