// Command xstat inspects an XML document or a prebuilt index: node and
// type counts, vocabulary size, the most frequent keywords, and the
// physical statistics of the index store — the numbers one checks before
// trusting benchmark output.
//
// Usage:
//
//	xstat -xml dblp.xml [-top 15]
//	xstat -index dblp.kv [-top 15]
//	xstat -index dblp.kv -blocks
//	xstat -index dblp.logdb -storage
//	xstat -shards dblp-shards
//
// With -shards, the per-shard layout of a directory written by
// xgen -shards is tabulated instead: each shard's node and partition
// counts, committed epoch, store size and WAL state, with totals.
//
// With -storage, the physical storage-engine report is rendered instead:
// the backend kind, the on-disk file inventory (pages for the B+tree,
// segment and hint files for the log engine), live/dead byte ratios,
// keydir footprint and cold-start load paths.
//
// With -blocks, the physical shape of the block-compressed posting
// storage is reported: per-term block counts, encoded versus
// materialized bytes, and a histogram of per-term compression ratios.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"xrefine/internal/index"
	"xrefine/internal/obs"
	"xrefine/internal/shard"
	"xrefine/internal/storage"
	"xrefine/internal/storage/backends"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xstat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("xstat", flag.ContinueOnError)
	var (
		xmlPath   = fs.String("xml", "", "XML document to inspect")
		indexPath = fs.String("index", "", "index file to inspect")
		shardDir  = fs.String("shards", "", "shard directory (xgen -shards) to inspect")
		top       = fs.Int("top", 15, "how many top keywords to list")
		blocks    = fs.Bool("blocks", false, "report block-compressed posting storage instead")
		storageOn = fs.Bool("storage", false, "report the index store's storage-engine state instead")
		backend   = fs.String("backend", "", "storage engine of -index: btree | log (default: detect from the layout)")
		slo       = fs.Bool("slo", false, "report a running server's SLO burn rates instead (needs -url)")
		url       = fs.String("url", "", "base URL of a running xserve, e.g. http://localhost:8080")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slo {
		if *url == "" {
			return fmt.Errorf("-slo needs -url pointing at a running server")
		}
		return reportSLO(w, *url)
	}
	if *shardDir != "" {
		return reportShards(w, *shardDir)
	}
	var ix *index.Index
	var storeStats *storage.Stats
	var epoch uint64
	var walBytes int64 = -1
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ix, err = index.BuildStream(f, nil)
		if err != nil {
			return err
		}
	case *indexPath != "":
		store, err := openStore(*indexPath, *backend)
		if err != nil {
			return err
		}
		defer store.Close()
		if *storageOn {
			return reportStorage(w, *indexPath, store)
		}
		ix, err = index.Load(store)
		if err != nil {
			return err
		}
		st := store.StorageStats()
		storeStats = &st
		epoch = store.Epoch()
		// A write-ahead log beside the index means the store takes live
		// updates; a non-empty one means the last writer died mid-commit
		// and the next OpenLive will replay it.
		if fi, err := os.Stat(*indexPath + ".wal"); err == nil {
			walBytes = fi.Size()
		}
	default:
		return fmt.Errorf("need -xml, -index, or -shards")
	}
	if *storageOn {
		return fmt.Errorf("-storage needs -index")
	}
	if *blocks {
		return reportBlocks(w, ix, *top)
	}
	return report(w, ix, storeStats, epoch, walBytes, *top)
}

// reportBlocks tabulates the physical shape of the block-compressed
// posting storage: the heaviest terms by encoded footprint, corpus-wide
// totals, and a histogram of per-term compression ratios (materialized
// bytes over encoded resident bytes). Short lists compress worst — a
// lone posting pays the full skip-table entry — so the histogram's low
// buckets are dominated by rare terms and the totals by frequent ones.
func reportBlocks(w io.Writer, ix *index.Index, top int) error {
	type row struct {
		term                   string
		postings, blocks       int
		encoded, raw, resident int
	}
	rows := make([]row, 0, len(ix.Vocabulary()))
	var totPost, totBlocks, totEnc, totRaw, totRes int
	for _, term := range ix.Vocabulary() {
		l, err := ix.List(term)
		if err != nil {
			return fmt.Errorf("list %q: %w", term, err)
		}
		r := row{
			term:     term,
			postings: l.Len(),
			blocks:   l.BlockCount(),
			encoded:  l.EncodedBytes(),
			raw:      l.LegacyBytes(),
			resident: l.MemoryBytes(),
		}
		rows = append(rows, r)
		totPost += r.postings
		totBlocks += r.blocks
		totEnc += r.encoded
		totRaw += r.raw
		totRes += r.resident
	}
	fmt.Fprintf(w, "terms:       %d\n", len(rows))
	fmt.Fprintf(w, "postings:    %d in %d blocks\n", totPost, totBlocks)
	fmt.Fprintf(w, "encoded:     %d bytes payload, %d resident (payload + skip + types)\n", totEnc, totRes)
	fmt.Fprintf(w, "raw:         %d bytes materialized\n", totRaw)
	if totRes > 0 {
		fmt.Fprintf(w, "compression: %.2fx (%.1f B/posting resident)\n",
			float64(totRaw)/float64(totRes), float64(totRes)/float64(totPost))
	}

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].encoded != rows[j].encoded {
			return rows[i].encoded > rows[j].encoded
		}
		return rows[i].term < rows[j].term
	})
	n := top
	if n > len(rows) {
		n = len(rows)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nterm\tpostings\tblocks\tencoded B\traw B\tratio")
	for _, r := range rows[:n] {
		ratio := 0.0
		if r.resident > 0 {
			ratio = float64(r.raw) / float64(r.resident)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2fx\n",
			r.term, r.postings, r.blocks, r.encoded, r.raw, ratio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ratio histogram over terms.
	bounds := []float64{1, 2, 3, 4, 6, 8, 12}
	labels := []string{"<1x", "1-2x", "2-3x", "3-4x", "4-6x", "6-8x", "8-12x", ">=12x"}
	counts := make([]int, len(labels))
	for _, r := range rows {
		if r.resident == 0 {
			continue
		}
		ratio := float64(r.raw) / float64(r.resident)
		b := sort.SearchFloat64s(bounds, ratio)
		if b < len(bounds) && ratio == bounds[b] {
			b++
		}
		counts[b]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ncompression ratio\tterms\t")
	for i, lab := range labels {
		bar := strings.Repeat("#", counts[i]*40/max)
		fmt.Fprintf(tw, "%s\t%d\t%s\n", lab, counts[i], bar)
	}
	return tw.Flush()
}

// reportShards tabulates the layout of a shard directory: one row per
// shard plus totals. Node totals overcount the shared corpus root (every
// shard stores it), which is why the monolithic numbers come from
// xstat -index on the unsplit corpus instead.
func reportShards(w io.Writer, dir string) error {
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shards:      %d (mode %s)\n", len(man.Shards), man.Mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nshard\tnodes\tpartitions\tepoch\tbytes\twal")
	var nodes, parts int
	var epochs uint64
	var bytes int64
	for _, e := range man.Shards {
		kind, err := storage.ParseKind(e.Backend)
		if err != nil {
			return err
		}
		store, err := backends.Open(kind, filepath.Join(dir, e.Store), &storage.Options{ReadOnly: true})
		if err != nil {
			return err
		}
		ix, err := index.Load(store)
		if err != nil {
			store.Close()
			return err
		}
		st := store.StorageStats()
		epoch := store.Epoch()
		if err := store.Close(); err != nil {
			return err
		}
		wal := "none"
		if fi, err := os.Stat(filepath.Join(dir, e.WAL)); err == nil {
			switch {
			case fi.Size() == 0:
				wal = "empty"
			default:
				wal = fmt.Sprintf("%d bytes pending", fi.Size())
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			e.Store, ix.NodeCount, len(ix.PartitionRoots()), epoch, st.DiskBytes, wal)
		nodes += ix.NodeCount
		parts += len(ix.PartitionRoots())
		epochs += epoch
		bytes += st.DiskBytes
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t\n", nodes, parts, epochs, bytes)
	return tw.Flush()
}

func report(w io.Writer, ix *index.Index, store *storage.Stats, epoch uint64, walBytes int64, top int) error {
	vocab := ix.Vocabulary()
	fmt.Fprintf(w, "nodes:       %d\n", ix.NodeCount)
	fmt.Fprintf(w, "node types:  %d\n", ix.Types.Len())
	fmt.Fprintf(w, "partitions:  %d\n", len(ix.PartitionRoots()))
	fmt.Fprintf(w, "vocabulary:  %d terms\n", len(vocab))
	if store != nil {
		switch store.Kind {
		case storage.KindLog:
			fmt.Fprintf(w, "store:       %s, %d keys, %d segments, %d bytes\n",
				store.Kind, store.Keys, store.Segments, store.DiskBytes)
		default:
			fmt.Fprintf(w, "store:       %s, %d keys, %d pages (%d free), %d bytes\n",
				store.Kind, store.Keys, store.Pages, store.FreePages, store.DiskBytes)
		}
		fmt.Fprintf(w, "epoch:       %d\n", epoch)
		switch {
		case walBytes < 0:
			fmt.Fprintf(w, "wal:         none\n")
		case walBytes == 0:
			fmt.Fprintf(w, "wal:         empty (all batches committed)\n")
		default:
			fmt.Fprintf(w, "wal:         %d bytes pending replay\n", walBytes)
		}
	}

	type tf struct {
		term string
		n    int
	}
	freqs := make([]tf, 0, len(vocab))
	for _, term := range vocab {
		freqs = append(freqs, tf{term: term, n: ix.ListLen(term)})
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].n != freqs[j].n {
			return freqs[i].n > freqs[j].n
		}
		return freqs[i].term < freqs[j].term
	})
	if top > len(freqs) {
		top = len(freqs)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ntop keywords\tpostings")
	for _, f := range freqs[:top] {
		fmt.Fprintf(tw, "%s\t%d\n", f.term, f.n)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nnode type\tcount\tdistinct terms")
	for _, ty := range ix.Types.SortTypesByPath() {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", ty.Path(), ix.NT(ty), ix.GT(ty))
	}
	return tw.Flush()
}

// openStore opens an index store read-only on the named engine, or on the
// engine its on-disk layout implies (file = btree, directory = log).
func openStore(path, backend string) (storage.Backend, error) {
	var kind storage.Kind
	var err error
	if backend != "" {
		kind, err = storage.ParseKind(backend)
	} else {
		kind, err = backends.Detect(path)
	}
	if err != nil {
		return nil, err
	}
	return backends.Open(kind, path, &storage.Options{ReadOnly: true})
}

// reportStorage renders the -storage report: the engine kind, the on-disk
// file inventory, live/dead ratios and the engine's resident footprint —
// the physical numbers one checks before trusting a compaction policy or
// a cold-start claim.
func reportStorage(w io.Writer, path string, store storage.Backend) error {
	st := store.StorageStats()
	fmt.Fprintf(w, "backend:     %s\n", st.Kind)
	fmt.Fprintf(w, "keys:        %d\n", st.Keys)
	fmt.Fprintf(w, "disk:        %d bytes\n", st.DiskBytes)
	fmt.Fprintf(w, "txid:        %d\n", st.Txid)
	fmt.Fprintf(w, "epoch:       %d\n", st.Epoch)
	switch st.Kind {
	case storage.KindLog:
		fmt.Fprintf(w, "segments:    %d\n", st.Segments)
		fmt.Fprintf(w, "live:        %d records, %d bytes\n", st.LiveRecords, st.LiveBytes)
		fmt.Fprintf(w, "dead:        %d records, %d bytes\n", st.DeadRecords, st.DeadBytes)
		if amp := st.Amplification(); amp > 0 {
			fmt.Fprintf(w, "amplification: %.2fx (disk over live)\n", amp)
		}
		fmt.Fprintf(w, "keydir:      %d entries, %d resident bytes\n", st.KeydirEntries, st.KeydirBytes)
		fmt.Fprintf(w, "compactions: %d since open\n", st.Compactions)
		fmt.Fprintf(w, "cold start:  %d segment(s) via hint files, %d via full scan\n", st.HintLoads, st.ScanLoads)
	default:
		fmt.Fprintf(w, "pages:       %d (%d free), %d bytes each\n", st.Pages, st.FreePages, st.PageSize)
	}

	// File inventory: the single page file for the B+tree, the segment /
	// hint / manifest listing for the log engine.
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nfile\tbytes\trole")
	if !fi.IsDir() {
		fmt.Fprintf(tw, "%s\t%d\tpage file\n", filepath.Base(path), fi.Size())
		return tw.Flush()
	}
	ents, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	var total int64
	for _, ent := range ents {
		info, err := ent.Info()
		if err != nil {
			continue
		}
		role := "other"
		switch {
		case strings.HasSuffix(ent.Name(), ".data"):
			role = "segment data"
		case strings.HasSuffix(ent.Name(), ".hint"):
			role = "cold-start hint"
		case ent.Name() == "MANIFEST":
			role = "segment manifest"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", ent.Name(), info.Size(), role)
		total += info.Size()
	}
	fmt.Fprintf(tw, "total\t%d\t\n", total)
	return tw.Flush()
}

// reportSLO fetches a running server's /healthz and renders the burn-rate
// report under its "slo" key — the remote half of `xrefine slo`.
func reportSLO(w io.Writer, base string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: %s", resp.Status)
	}
	var body struct {
		SLO *obs.SLOReport `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decode /healthz: %w", err)
	}
	if body.SLO == nil {
		return fmt.Errorf("server reports no SLO data (older build?)")
	}
	obs.WriteSLOReport(w, *body.SLO)
	return nil
}
