// Command xstat inspects an XML document or a prebuilt index: node and
// type counts, vocabulary size, the most frequent keywords, and the
// physical statistics of the index store — the numbers one checks before
// trusting benchmark output.
//
// Usage:
//
//	xstat -xml dblp.xml [-top 15]
//	xstat -index dblp.kv [-top 15]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"xrefine/internal/index"
	"xrefine/internal/kvstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xstat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("xstat", flag.ContinueOnError)
	var (
		xmlPath   = fs.String("xml", "", "XML document to inspect")
		indexPath = fs.String("index", "", "index file to inspect")
		top       = fs.Int("top", 15, "how many top keywords to list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ix *index.Index
	var storeStats *kvstore.Stats
	var epoch uint64
	var walBytes int64 = -1
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ix, err = index.BuildStream(f, nil)
		if err != nil {
			return err
		}
	case *indexPath != "":
		store, err := kvstore.Open(*indexPath, &kvstore.Options{ReadOnly: true})
		if err != nil {
			return err
		}
		defer store.Close()
		ix, err = index.Load(store)
		if err != nil {
			return err
		}
		st := store.Stats()
		storeStats = &st
		epoch = store.Epoch()
		// A write-ahead log beside the index means the store takes live
		// updates; a non-empty one means the last writer died mid-commit
		// and the next OpenLive will replay it.
		if fi, err := os.Stat(*indexPath + ".wal"); err == nil {
			walBytes = fi.Size()
		}
	default:
		return fmt.Errorf("need -xml or -index")
	}
	return report(w, ix, storeStats, epoch, walBytes, *top)
}

func report(w io.Writer, ix *index.Index, store *kvstore.Stats, epoch uint64, walBytes int64, top int) error {
	vocab := ix.Vocabulary()
	fmt.Fprintf(w, "nodes:       %d\n", ix.NodeCount)
	fmt.Fprintf(w, "node types:  %d\n", ix.Types.Len())
	fmt.Fprintf(w, "partitions:  %d\n", len(ix.PartitionRoots()))
	fmt.Fprintf(w, "vocabulary:  %d terms\n", len(vocab))
	if store != nil {
		fmt.Fprintf(w, "store:       %d keys, %d pages (%d free), %d bytes\n",
			store.Keys, store.Pages, store.FreePages, store.FileSize)
		fmt.Fprintf(w, "epoch:       %d\n", epoch)
		switch {
		case walBytes < 0:
			fmt.Fprintf(w, "wal:         none\n")
		case walBytes == 0:
			fmt.Fprintf(w, "wal:         empty (all batches committed)\n")
		default:
			fmt.Fprintf(w, "wal:         %d bytes pending replay\n", walBytes)
		}
	}

	type tf struct {
		term string
		n    int
	}
	freqs := make([]tf, 0, len(vocab))
	for _, term := range vocab {
		freqs = append(freqs, tf{term: term, n: ix.ListLen(term)})
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].n != freqs[j].n {
			return freqs[i].n > freqs[j].n
		}
		return freqs[i].term < freqs[j].term
	})
	if top > len(freqs) {
		top = len(freqs)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ntop keywords\tpostings")
	for _, f := range freqs[:top] {
		fmt.Fprintf(tw, "%s\t%d\n", f.term, f.n)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nnode type\tcount\tdistinct terms")
	for _, ty := range ix.Types.SortTypesByPath() {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", ty.Path(), ix.NT(ty), ix.GT(ty))
	}
	return tw.Flush()
}
