// Command xbench regenerates every table and figure of the paper's
// evaluation (Section VIII) on the synthetic substrate. Each subcommand
// corresponds to one experiment; `xbench all` runs everything. DESIGN.md
// carries the experiment index; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	xbench [-scale 1.0] [-reps 3] [-queries 50] <experiment>
//	paper experiments: tables3-6 fig4 fig5 fig6 table7 table8 table9 table10
//	extensions:        ablation-decay ablation-searchfor ablation-slca
//	                   ablation-beam elca parallel obs update shard compress
//	                   storage wire
//	or: all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"xrefine/internal/core"
	"xrefine/internal/datagen"
	"xrefine/internal/experiments"
)

var (
	scale    = flag.Float64("scale", 1.0, "DBLP corpus scale in (0,1]")
	reps     = flag.Int("reps", 3, "timed repetitions per measurement")
	queries  = flag.Int("queries", 50, "effectiveness pool size")
	jsonOut  = flag.Bool("json", false, "emit machine-readable JSON (parallel experiment)")
	maxprocs = flag.Int("workers", 8, "largest worker count for the parallel experiment")
	writes   = flag.Int("writes", 20000, "synthetic write-burst size for the storage experiment")
	wireReqs = flag.Int("wire-requests", 400, "timed requests per surface for the wire experiment")
	wireDep  = flag.Int("wire-depth", 32, "in-flight pipeline depth for the wire experiment")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xbench [flags] tables3-6|fig4|fig5|fig6|table7|table8|table9|table10|ablation-decay|ablation-searchfor|ablation-slca|ablation-beam|elca|parallel|obs|update|shard|compress|storage|wire|all")
		os.Exit(2)
	}
	runners := map[string]func() error{
		"fig4":               fig4,
		"fig5":               fig5,
		"fig6":               fig6,
		"tables3-6":          tables3to6,
		"table7":             table7,
		"table8":             table8,
		"table9":             table9,
		"table10":            table10,
		"ablation-decay":     ablationDecay,
		"ablation-searchfor": ablationSearchFor,
		"ablation-slca":      ablationSLCA,
		"ablation-beam":      ablationBeam,
		"elca":               elcaCompare,
		"parallel":           parallelCompare,
		"obs":                obsOverhead,
		"update":             updateBench,
		"shard":              shardCompare,
		"compress":           compressCompare,
		"storage":            storageCompare,
		"wire":               wireCompare,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{
			"tables3-6", "fig4", "fig5", "fig6", "table7", "table8",
			"table9", "table10", "ablation-decay", "ablation-searchfor",
			"ablation-slca", "ablation-beam", "elca", "parallel", "obs",
			"update", "shard", "compress", "storage", "wire",
		} {
			if err := runners[n](); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", name))
	}
	if err := run(); err != nil {
		fatal(err)
	}
}

func corpus() (*experiments.Corpus, error) { return experiments.DBLPCorpus(*scale) }

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n=== %s ===\n", title)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

func fig4() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.Fig4(c, *reps)
	if err != nil {
		return err
	}
	w := header("Figure 4: Top-1 refinement time per sample query (ms, hot cache)")
	fmt.Fprintln(w, "query\top\tstack-refine\tSLE\tPartition\tstack-slca\tscan-slca\t|RQ results|\tverified")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%v\n",
			r.ID, r.Op, ms(r.StackRefine), ms(r.SLE), ms(r.Partition),
			ms(r.StackSLCA), ms(r.ScanSLCA), r.RQResultSize, r.Verified)
	}
	return w.Flush()
}

func fig5() error {
	ks := []int{1, 2, 3, 4, 5, 6}
	c, err := corpus()
	if err != nil {
		return err
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 40})
	if err != nil {
		return err
	}
	rows, err := experiments.Fig5(c, batch, ks, *reps)
	if err != nil {
		return err
	}
	w := header("Figure 5(a): effect of K on Top-K refinement, DBLP (batch avg, ms)")
	fmt.Fprintln(w, "K\tPartition\tSLE")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\n", r.K, ms(r.Partition), ms(r.SLE))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	bb, err := experiments.BaseballCorpus()
	if err != nil {
		return err
	}
	bbBatch, err := bb.Workload(datagen.WorkloadConfig{Seed: 556, Queries: 20})
	if err != nil {
		return err
	}
	bbRows, err := experiments.Fig5(bb, bbBatch, ks, *reps)
	if err != nil {
		return err
	}
	w = header("Figure 5(b): effect of K on Top-K refinement, Baseball (batch avg, ms)")
	fmt.Fprintln(w, "K\tPartition\tSLE")
	for _, r := range bbRows {
		fmt.Fprintf(w, "%d\t%s\t%s\n", r.K, ms(r.Partition), ms(r.SLE))
	}
	return w.Flush()
}

func fig6() error {
	scales := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for i := range scales {
		scales[i] *= *scale
	}
	rows, err := experiments.Fig6(scales, 40, *reps)
	if err != nil {
		return err
	}
	w := header("Figure 6: effect of data size on Top-3 refinement (batch avg, ms)")
	fmt.Fprintln(w, "scale\tnodes\tPartition\tSLE")
	for _, r := range rows {
		fmt.Fprintf(w, "%d%%\t%d\t%s\t%s\n", r.ScalePct, r.Nodes, ms(r.Partition), ms(r.SLE))
	}
	return w.Flush()
}

func tables3to6() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	tables, err := experiments.Tables3to6(c, 4)
	if err != nil {
		return err
	}
	order := []struct{ op, title string }{
		{"deletion", "Table III: sample query set for term deletion"},
		{"merging", "Table IV: sample query set for term merging"},
		{"split", "Table V: sample query set for term split"},
		{"substitution", "Table VI: sample query set for term substitution"},
	}
	for _, o := range order {
		w := header(o.title)
		fmt.Fprintln(w, "ID\toriginal query\tsuggested refinement\tdSim\tresult size")
		for _, r := range tables[o.op] {
			fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%d\n",
				r.ID, experiments.JoinTerms(r.Original), experiments.JoinTerms(r.Suggested), r.DSim, r.ResultSize)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func table7() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.Table7(c)
	if err != nil {
		return err
	}
	w := header("Table VII: Top-4 refined queries with result counts (full ranking model)")
	fmt.Fprintln(w, "ID\toriginal query\tRQ1\tRQ2\tRQ3\tRQ4\trank-1 agreement")
	for _, r := range rows {
		cells := make([]string, 4)
		for i := range cells {
			if i < len(r.RQs) {
				cells[i] = fmt.Sprintf("%s,%d", experiments.JoinTerms(r.RQs[i].Keywords), r.RQs[i].Results)
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%.2f\n",
			r.ID, experiments.JoinTerms(r.Query), cells[0], cells[1], cells[2], cells[3], r.Agreement)
	}
	return w.Flush()
}

func table8() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	t8, _, err := experiments.BuildTable8(c, *queries*2)
	if err != nil {
		return err
	}
	w := header("Table VIII: query pool statistics")
	fmt.Fprintf(w, "pool size\t%d\n", t8.PoolSize)
	fmt.Fprintf(w, "avg keywords\t%.2f\n", t8.AvgLen)
	fmt.Fprintf(w, "need refinement\t%d\n", t8.NeedRefine)
	fmt.Fprintf(w, "refinable\t%d\n", t8.Refinable)
	for op, n := range t8.ByCorruption {
		fmt.Fprintf(w, "corruption %s\t%d\n", op, n)
	}
	return w.Flush()
}

func table9() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.Table9(c, *queries)
	if err != nil {
		return err
	}
	return printCG("Table IX: CG@1..4 by ranking model (RS0 full, RSi drops Guideline i)", rows)
}

func table10() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.Table10(c, *queries)
	if err != nil {
		return err
	}
	return printCG("Table X: CG@1..4 by (alpha, beta) weighting", rows)
}

func ablationDecay() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.AblationDecay(c, *queries)
	if err != nil {
		return err
	}
	return printCG("Ablation: Guideline-4 decay constant (paper asserts p=0.8)", rows)
}

func ablationSearchFor() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.AblationSearchFor(c, *queries)
	if err != nil {
		return err
	}
	w := header("Ablation: search-for candidate threshold θ (Guideline 3)")
	fmt.Fprintln(w, "theta\tavg candidates\tCG@1\tCG@2\tCG@3\tCG@4")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%.2f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Theta, r.AvgCandidates, r.CG[0], r.CG[1], r.CG[2], r.CG[3])
	}
	return w.Flush()
}

func ablationSLCA() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.AblationSLCA(c, 20, *reps)
	if err != nil {
		return err
	}
	w := header("Ablation: pluggable SLCA algorithm cost inside Partition (Lemma 3)")
	fmt.Fprintln(w, "slca algorithm\tbatch avg (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%s\n", r.Algo, ms(r.Partition))
	}
	return w.Flush()
}

func ablationBeam() error {
	rows, err := experiments.AblationBeam(200, 6, 2026)
	if err != nil {
		return err
	}
	w := header("Ablation: k-best DP beam width vs candidate recall (exhaustive ground truth)")
	fmt.Fprintln(w, "beam factor\trecall@6\toptimum always found")
	for _, r := range rows {
		fmt.Fprintf(w, "%dx\t%.3f\t%v\n", r.BeamFactor, r.Recall, r.OptimalAlways)
	}
	return w.Flush()
}

func elcaCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.CompareELCA(c, 15)
	if err != nil {
		return err
	}
	w := header("Extension: SLCA vs ELCA result counts (ELCA admits independently-witnessed ancestors)")
	fmt.Fprintln(w, "query\t|SLCA|\t|ELCA|")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\n", experiments.JoinTerms(r.Query), r.SLCA, r.ELCA)
	}
	return w.Flush()
}

func parallelCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 20})
	if err != nil {
		return err
	}
	var counts []int
	for w := 2; w <= *maxprocs; w *= 2 {
		counts = append(counts, w)
	}
	if len(counts) == 0 {
		counts = []int{2}
	}
	rows, err := experiments.ParallelCompare(c, batch, counts, 3, *reps)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			GOMAXPROCS int                       `json:"gomaxprocs"`
			Scale      float64                   `json:"scale"`
			K          int                       `json:"k"`
			Rows       []experiments.ParallelRow `json:"rows"`
		}{runtime.GOMAXPROCS(0), *scale, 3, rows})
	}
	w := header(fmt.Sprintf("Parallel partition pipeline: batch Top-3 walk time vs workers (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
	fmt.Fprintln(w, "workers\tbatch avg (ms)\tspeedup\tidentical output\tengaged queries")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.3f\t%.2fx\t%v\t%d\n", r.Workers, r.AvgMS, r.Speedup, r.Identical, r.Engaged)
	}
	return w.Flush()
}

func obsOverhead() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 777, Queries: 20})
	if err != nil {
		return err
	}
	rows, err := experiments.ObsOverhead(c, batch, 3, *reps)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Scale float64              `json:"scale"`
			K     int                  `json:"k"`
			Rows  []experiments.ObsRow `json:"rows"`
		}{*scale, 3, rows})
	}
	w := header("Tracing overhead: batch Top-3 partition walk, spans disarmed vs armed")
	fmt.Fprintln(w, "mode\tbatch avg (ms)\toverhead\tspans/batch")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.2f%%\t%d\n", r.Mode, r.AvgMS, r.OverheadPct, r.Spans)
	}
	return w.Flush()
}

// shardCompare measures scatter-gather fan-out scaling: the same
// corruption batch against the monolithic engine and against in-memory
// shard routers of growing width, with every sharded response checked
// against the monolithic signature.
func shardCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 20})
	if err != nil {
		return err
	}
	var counts []int
	for n := 2; n <= *maxprocs; n *= 2 {
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		counts = []int{2}
	}
	rows, err := experiments.ShardCompare(c, batch, counts, 3, *reps)
	if err != nil {
		return err
	}
	// Tail latency with one slow replica per shard: each page read on
	// replica 0 pays 1ms, the selector starts cold before every query, and
	// hedging (250µs delay) races the fast replica against it.
	tail, err := experiments.ShardTailLatency(c, batch[:10], 2, 3, *reps,
		time.Millisecond, 250*time.Microsecond)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			GOMAXPROCS int                    `json:"gomaxprocs"`
			Scale      float64                `json:"scale"`
			K          int                    `json:"k"`
			Rows       []experiments.ShardRow `json:"rows"`
			Tail       []experiments.TailRow  `json:"tail"`
		}{runtime.GOMAXPROCS(0), *scale, 3, rows, tail})
	}
	w := header(fmt.Sprintf("Sharded scatter-gather: batch Top-3 query time vs shard count (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
	fmt.Fprintln(w, "shards\tbatch avg (ms)\tspeedup\tidentical output")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.3f\t%.2fx\t%v\n", r.Shards, r.AvgMS, r.Speedup, r.Identical)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = header("Replica tail latency: 2 shards x 2 replicas, replica 0 slow (1ms/page read), cold selector per query")
	fmt.Fprintln(w, "mode\tsamples\tp50 (ms)\tp99 (ms)\tavg (ms)\thedges\tidentical output")
	for _, r := range tail {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\t%d\t%v\n",
			r.Mode, r.Samples, r.P50MS, r.P99MS, r.AvgMS, r.Hedges, r.Identical)
	}
	return w.Flush()
}

// compressCompare reports what the block-compressed posting storage buys
// (resident bytes per posting, against the modeled materialized form) and
// what it costs (raw decode rate, end-to-end batch latency in both
// representations, with output identity checked).
func compressCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	batch, err := c.Workload(datagen.WorkloadConfig{Seed: 555, Queries: 20})
	if err != nil {
		return err
	}
	rep, err := experiments.CompressCompare(c, batch, 3, *reps)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Scale float64 `json:"scale"`
			K     int     `json:"k"`
			*experiments.CompressReport
		}{*scale, 3, rep})
	}
	w := header("Succinct postings: block-compressed vs materialized lists")
	fmt.Fprintf(w, "terms\t%d\n", rep.Terms)
	fmt.Fprintf(w, "postings\t%d\n", rep.Postings)
	fmt.Fprintf(w, "blocks\t%d\n", rep.Blocks)
	fmt.Fprintf(w, "decode ns/posting\t%.1f\n", rep.DecodeNsPerPosting)
	fmt.Fprintf(w, "compression ratio\t%.2fx\n", rep.Ratio)
	fmt.Fprintln(w, "mode\tresident bytes\tB/posting\tbatch avg (ms)\tidentical output")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.3f\t%v\n",
			r.Mode, r.ResidentBytes, r.BytesPerPosting, r.AvgMS, r.Identical)
	}
	return w.Flush()
}

// storageCompare runs the storage-engine shoot-out: the corpus persisted
// through both engines, then write throughput, point/range read latency,
// on-disk amplification after checkpoint, and cold-start latency — with
// the log engine opened both through its hint files and with hints
// ignored, so the table prices exactly what the hint fast path buys.
func storageCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.StorageCompare(c, *writes, *reps)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Scale  float64                  `json:"scale"`
			Writes int                      `json:"writes"`
			Rows   []experiments.StorageRow `json:"rows"`
		}{*scale, *writes, rows})
	}
	w := header(fmt.Sprintf("Storage engines: B+tree vs log-structured (%dk-op write burst, checkpoint, cold start)", *writes/1000))
	fmt.Fprintln(w, "backend\tcold open (ms)\tscan open (ms)\thint speedup\twrites (kops/s)\twrites (MB/s)\tval bytes\tpoint read (µs)\trange scan (ms)\tkeys\tdisk bytes\tamplification\tsegments")
	for _, r := range rows {
		seg := "-"
		if r.Segments > 0 {
			seg = fmt.Sprint(r.Segments)
		}
		amp := "-"
		if r.Amplification > 0 {
			amp = fmt.Sprintf("%.2fx", r.Amplification)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.1fx\t%.1f\t%.1f\t%d\t%.2f\t%.3f\t%d\t%d\t%s\t%s\n",
			r.Backend, r.ColdOpenMS, r.ScanOpenMS, r.HintSpeedup,
			r.WriteKOpsPerSec, r.WriteMBPerSec, r.ValueBytes, r.PointReadUS, r.RangeScanMS,
			r.Keys, r.DiskBytes, amp, seg)
	}
	return w.Flush()
}

func printCG(title string, rows []experiments.CGRow) error {
	w := header(title)
	fmt.Fprintln(w, "model\tCG@1\tCG@2\tCG@3\tCG@4")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", r.Model, r.CG[0], r.CG[1], r.CG[2], r.CG[3])
	}
	return w.Flush()
}

// updateBench measures the live-update path: apply throughput on its own,
// and query latency with and without a concurrent writer, quantifying
// what epoch publication costs readers. Uses an in-memory engine so the
// numbers isolate staging + epoch-swap cost from disk commit cost.
func updateBench() error {
	authors := int(800 * *scale)
	if authors < 100 {
		authors = 100
	}
	doc, err := datagen.DBLPDocument(datagen.DBLPConfig{Authors: authors, Seed: 42})
	if err != nil {
		return err
	}
	const batchOps = 8
	nBatches := 10 * *reps
	benchQueries := [][]string{
		{"database", "query"},
		{"keyword", "search", "xml"},
		{"online", "databse"}, // misspelled: exercises refinement
		{"twig", "pattern", "matching"},
	}

	// measure runs query rounds until stop closes, returning latencies.
	measure := func(eng *core.Engine, stop <-chan struct{}) []time.Duration {
		var lat []time.Duration
		for i := 0; ; i++ {
			select {
			case <-stop:
				return lat
			default:
			}
			q := benchQueries[i%len(benchQueries)]
			t0 := time.Now()
			if _, err := eng.QueryTerms(q, core.StrategyPartition, 3); err == nil {
				lat = append(lat, time.Since(t0))
			}
		}
	}
	stats := func(lat []time.Duration) (avg, p95 time.Duration) {
		if len(lat) == 0 {
			return 0, 0
		}
		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return sum / time.Duration(len(sorted)), sorted[len(sorted)*95/100]
	}

	// Apply-only throughput.
	batches, err := datagen.Updates(doc, datagen.UpdatesConfig{Batches: nBatches, Ops: batchOps, Seed: 99})
	if err != nil {
		return err
	}
	writer := core.NewFromDocument(doc, nil)
	t0 := time.Now()
	for _, b := range batches {
		if _, err := writer.Apply(b); err != nil {
			return err
		}
	}
	applyDur := time.Since(t0)
	opsTotal := nBatches * batchOps

	// Read-only baseline: queries for the same wall-clock the writer took.
	baseline := core.NewFromDocument(doc, nil)
	stop := make(chan struct{})
	time.AfterFunc(applyDur, func() { close(stop) })
	baseAvg, baseP95 := stats(measure(baseline, stop))

	// Mixed: a writer applying the same batches while one reader queries.
	mixed := core.NewFromDocument(doc, nil)
	stop = make(chan struct{})
	var mixedApply time.Duration
	var applyErr error
	go func() {
		defer close(stop)
		t := time.Now()
		for _, b := range batches {
			if _, err := mixed.Apply(b); err != nil {
				applyErr = err
				return
			}
		}
		mixedApply = time.Since(t)
	}()
	mixAvg, mixP95 := stats(measure(mixed, stop))
	if applyErr != nil {
		return applyErr
	}

	w := header("Update: apply throughput and query-latency impact (in-memory engine)")
	fmt.Fprintf(w, "corpus\t%d authors, %d nodes\n", authors, doc.NodeCount)
	fmt.Fprintf(w, "apply alone\t%d batches (%d ops) in %s = %.0f ops/s\n",
		nBatches, opsTotal, applyDur.Round(time.Millisecond), float64(opsTotal)/applyDur.Seconds())
	if mixedApply > 0 {
		fmt.Fprintf(w, "apply vs reader\t%s = %.0f ops/s\n",
			mixedApply.Round(time.Millisecond), float64(opsTotal)/mixedApply.Seconds())
	}
	fmt.Fprintf(w, "query latency idle\tavg %s\tp95 %s\n", ms(baseAvg), ms(baseP95))
	fmt.Fprintf(w, "query latency under writes\tavg %s\tp95 %s\n", ms(mixAvg), ms(mixP95))
	fmt.Fprintf(w, "final epoch\t%d\n", mixed.Epoch())
	return w.Flush()
}

func wireCompare() error {
	c, err := corpus()
	if err != nil {
		return err
	}
	rows, err := experiments.WireCompare(c, []int{1, 10}, *wireReqs, *wireDep)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(struct {
			GOMAXPROCS int                   `json:"gomaxprocs"`
			Rows       []experiments.WireRow `json:"rows"`
		}{runtime.GOMAXPROCS(0), rows})
	}
	w := header(fmt.Sprintf("Wire: binary protocol vs HTTP, %d requests/surface, pipeline depth %d, GOMAXPROCS=%d",
		*wireReqs, *wireDep, runtime.GOMAXPROCS(0)))
	fmt.Fprintln(w, "surface\tk\tQPS\tQPS/core\tp50 ms\tp99 ms\tspeedup vs http")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.3f\t%.3f\t%.2fx\n",
			r.Surface, r.K, r.QPS, r.QPSCore, r.P50MS, r.P99MS, r.Speedup)
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xbench:", err)
	os.Exit(1)
}
