package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrefine"
)

const testDoc = `
<bib>
  <author><publications>
    <paper><title>online database systems</title><year>2003</year></paper>
    <paper><title>efficient keyword search</title><year>2005</year></paper>
  </publications></author>
</bib>`

func testEngine(t *testing.T) (*xrefine.Engine, *xrefine.Document) {
	t.Helper()
	doc, err := xrefine.ParseXML(strings.NewReader(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	return xrefine.NewFromDocument(doc, nil), doc
}

func TestAnswerDirectMatch(t *testing.T) {
	eng, doc := testEngine(t)
	var b strings.Builder
	answer(&b, eng, doc, "online database", xrefine.StrategyPartition, 3, false)
	out := b.String()
	if !strings.Contains(out, "matches directly") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "online database systems") {
		t.Error("snippet missing")
	}
}

func TestAnswerRefinement(t *testing.T) {
	eng, doc := testEngine(t)
	var b strings.Builder
	answer(&b, eng, doc, "online databse", xrefine.StrategyPartition, 3, false)
	out := b.String()
	if !strings.Contains(out, "no meaningful result") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "database") || !strings.Contains(out, "dSim=1.0") {
		t.Errorf("refinement missing: %q", out)
	}
	if !strings.Contains(out, "via: databse ->substitute database") {
		t.Errorf("provenance missing: %q", out)
	}
}

func TestAnswerHopeless(t *testing.T) {
	eng, doc := testEngine(t)
	var b strings.Builder
	answer(&b, eng, doc, "zzz qqq", xrefine.StrategyPartition, 3, false)
	if !strings.Contains(b.String(), "(none found)") {
		t.Errorf("output = %q", b.String())
	}
}

func TestAnswerError(t *testing.T) {
	eng, doc := testEngine(t)
	var b strings.Builder
	answer(&b, eng, doc, "   ", xrefine.StrategyPartition, 3, false)
	if !strings.Contains(b.String(), "error:") {
		t.Errorf("output = %q", b.String())
	}
}

func TestAnswerExplainTrace(t *testing.T) {
	eng, doc := testEngine(t)
	var b strings.Builder
	answer(&b, eng, doc, "online databse", xrefine.StrategyPartition, 3, true)
	out := b.String()
	if !strings.Contains(out, "trace:") {
		t.Errorf("-explain output missing trace header: %q", out)
	}
	for _, span := range []string{"query", "tokenize", "refine:"} {
		if !strings.Contains(out, span) {
			t.Errorf("trace missing %q span:\n%s", span, out)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	if parseStrategy("partition") != xrefine.StrategyPartition ||
		parseStrategy("sle") != xrefine.StrategySLE ||
		parseStrategy("stack") != xrefine.StrategyStack {
		t.Error("strategy parsing broken")
	}
}

func TestTokenizeArg(t *testing.T) {
	got := tokenizeArg("On-Line, DATA")
	if len(got) != 2 || got[0] != "online" || got[1] != "data" {
		t.Errorf("tokenizeArg = %v", got)
	}
}

func TestRunBatch(t *testing.T) {
	eng, _ := testEngine(t)
	in := strings.NewReader(`
# comment line
online database
online databse
zzz qqq

`)
	var out strings.Builder
	if err := runBatch(&out, eng, in, xrefine.StrategyPartition, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "online database\tfalse\t") {
		t.Errorf("direct line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "online databse\ttrue\t") || !strings.Contains(lines[1], "database online") {
		t.Errorf("refined line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("hopeless line = %q", lines[2])
	}
}

func TestExplain(t *testing.T) {
	eng, _ := testEngine(t)
	var out strings.Builder
	if err := explain(&out, eng, "online databse", 3); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"needs refinement: true",
		"rules derived",
		"[spelling]",
		"search-for candidates",
		"ranked queries:",
		"via databse ->substitute database",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestApplyBatch(t *testing.T) {
	dir := t.TempDir()
	kv := filepath.Join(dir, "d.kv")
	wal := kv + ".wal"
	batch := filepath.Join(dir, "updates.txt")

	eng, doc := testEngine(t)
	_ = doc
	store, err := xrefine.OpenStore(kv, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndexWithDocument(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	ops := `# one insert, one delete
{"op":"insert","parent":"0","xml":"<author><publications><paper><title>applied sentinel paper</title></paper></publications></author>"}
{"op":"delete","target":"0.0.0.0"}
`
	if err := os.WriteFile(batch, []byte(ops), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := applyBatch(&out, kv, wal, batch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "epoch 1: 1 insert op(s), 1 delete op(s)") {
		t.Errorf("apply output = %q", out.String())
	}

	// The committed epoch answers queries for the inserted content.
	store2, err := xrefine.OpenStore(kv, true)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	eng2, err := xrefine.OpenIndex(store2, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng2.Query("applied sentinel")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NeedRefine {
		t.Error("applied batch not visible after reopen")
	}
}

func TestNarrowQuery(t *testing.T) {
	// A corpus where "paper" floods.
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < 30; i++ {
		b.WriteString("<author><publications>")
		fmt.Fprintf(&b, "<paper><title>database topic%d</title></paper>", i%3)
		b.WriteString("</publications></author>")
	}
	b.WriteString("</bib>")
	doc, err := xrefine.ParseXML(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	eng := xrefine.NewFromDocument(doc, nil)
	var out strings.Builder
	if err := narrowQuery(&out, eng, "database", 5, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "too broad") {
		t.Errorf("output = %q", out.String())
	}
	out.Reset()
	if err := narrowQuery(&out, eng, "database topic1", 500, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "specific enough") {
		t.Errorf("output = %q", out.String())
	}
}
