// Command xrefine indexes an XML document and answers keyword queries with
// automatic refinement — the paper's prototype as a CLI.
//
// Usage:
//
//	xrefine index  -xml dblp.xml -index dblp.kv -with-doc
//	xrefine search -xml dblp.xml "online databse"
//	xrefine search -index dblp.kv -k 5 -strategy sle "efficient key word search"
//	xrefine search -shards dblp-shards "online databse"
//	xrefine search -wire localhost:7070 "online databse"
//	xrefine apply  -index dblp.kv -batch updates.txt
//	xrefine repl   -xml dblp.xml
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"xrefine"
	"xrefine/internal/obs"
	"xrefine/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "repl":
		cmdREPL(os.Args[2:])
	case "batch":
		cmdBatch(os.Args[2:])
	case "apply":
		cmdApply(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "narrow":
		cmdNarrow(os.Args[2:])
	case "slo":
		cmdSLO(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xrefine index  -xml <file> -index <file> [-backend btree|log] [-with-doc]   build a persistent index
  xrefine search [-xml <file> | -index <file> | -shards <dir> [-replicas N] [-hedge-after D]] [-k N] [-strategy partition|sle|stack] [-parallel N] [-explain] <query>
  xrefine batch  [-xml <file> | -index <file>] [-k N] [-parallel N] -queries <file>   one query per line, TSV out
  xrefine apply  -index <file> [-wal <file>] -batch <file>   apply an update batch as a new epoch
  xrefine explain [-xml <file> | -index <file>] <query>   full decision trace
  xrefine narrow [-xml <file>] [-max N] [-k N] <query>    too-many-results suggestions
  xrefine slo    -url <http://host:port>        burn-rate report from a running xserve
  xrefine repl   [-xml <file> | -index <file>]  interactive session`)
	os.Exit(2)
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	xmlPath := fs.String("xml", "", "XML document to index")
	indexPath := fs.String("index", "", "output index file")
	withDoc := fs.Bool("with-doc", false, "also store the document (keeps snippets and narrowing)")
	backend := fs.String("backend", "", "storage engine: btree (default) | log")
	fs.Parse(args)
	if *xmlPath == "" || *indexPath == "" {
		fatal(fmt.Errorf("index needs -xml and -index"))
	}
	f, err := os.Open(*xmlPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	eng, err := xrefine.NewFromXML(f, nil)
	if err != nil {
		fatal(err)
	}
	store, err := xrefine.OpenStoreKind(*backend, *indexPath, false)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	if *withDoc {
		err = eng.SaveIndexWithDocument(store)
	} else {
		err = eng.SaveIndex(store)
	}
	if err != nil {
		fatal(err)
	}
	st := store.StorageStats()
	fmt.Printf("indexed %s -> %s (%s backend, %d keys, %d bytes)\n",
		*xmlPath, *indexPath, st.Kind, st.Keys, st.DiskBytes)
}

// queryBackend is the slice of the engine surface the answer path needs;
// *xrefine.Engine and *xrefine.ShardRouter both satisfy it.
type queryBackend interface {
	QueryTermsCtx(ctx context.Context, terms []string, strategy xrefine.Strategy, k, parallelism int) (*xrefine.Response, error)
	Snippet(m xrefine.Match, maxRunes int) (string, bool)
}

// load builds an engine from either -xml or -index.
func load(fs *flag.FlagSet) (*xrefine.Engine, *xrefine.Document, func()) {
	xmlPath := fs.Lookup("xml").Value.String()
	indexPath := fs.Lookup("index").Value.String()
	cfg := engineConfig(fs)
	switch {
	case xmlPath != "":
		f, err := os.Open(xmlPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		doc, err := xrefine.ParseXML(f)
		if err != nil {
			fatal(err)
		}
		return xrefine.NewFromDocument(doc, cfg), doc, func() {}
	case indexPath != "":
		store, err := xrefine.OpenStore(indexPath, true)
		if err != nil {
			fatal(err)
		}
		eng, err := xrefine.OpenIndex(store, cfg)
		if err != nil {
			store.Close()
			fatal(err)
		}
		return eng, nil, func() { store.Close() }
	}
	fatal(fmt.Errorf("need -xml or -index"))
	return nil, nil, nil
}

// loadBackend is load plus -shards: a shard directory opens a
// scatter-gather router instead of a single engine. -replicas bounds how
// many replicas per shard attach and -hedge-after enables hedged reads.
func loadBackend(fs *flag.FlagSet) (queryBackend, *xrefine.Document, func()) {
	if f := fs.Lookup("shards"); f != nil && f.Value.String() != "" {
		opts := &xrefine.ShardOptions{Config: engineConfig(fs)}
		if rf := fs.Lookup("replicas"); rf != nil {
			if n, err := strconv.Atoi(rf.Value.String()); err == nil && n > 0 {
				opts.Replicas = n
			}
		}
		if hf := fs.Lookup("hedge-after"); hf != nil {
			if d, err := time.ParseDuration(hf.Value.String()); err == nil && d > 0 {
				opts.HedgeAfter = d
			}
		}
		r, err := xrefine.OpenShards(f.Value.String(), opts)
		if err != nil {
			fatal(err)
		}
		return r, nil, func() { r.Close() }
	}
	eng, doc, closeFn := load(fs)
	return eng, doc, closeFn
}

// engineConfig translates the optional -parallel flag into an engine
// config: unset or 0 keeps the default (all cores), 1 forces the
// sequential partition walk. Output is identical at any setting.
func engineConfig(fs *flag.FlagSet) *xrefine.Config {
	f := fs.Lookup("parallel")
	if f == nil {
		return nil
	}
	n, err := strconv.Atoi(f.Value.String())
	if err != nil || n <= 0 {
		return nil
	}
	return &xrefine.Config{Parallelism: n}
}

func parseStrategy(s string) xrefine.Strategy {
	switch s {
	case "partition":
		return xrefine.StrategyPartition
	case "sle":
		return xrefine.StrategySLE
	case "stack":
		return xrefine.StrategyStack
	}
	fatal(fmt.Errorf("unknown strategy %q", s))
	return 0
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	fs.String("xml", "", "XML document")
	fs.String("index", "", "index file")
	fs.String("shards", "", "shard directory (xgen -shards) to query scatter-gather")
	fs.Int("replicas", 0, "replicas per shard to attach from the manifest (0 = all)")
	fs.Duration("hedge-after", 0, "hedge a slow shard scan onto the next replica after this delay (0 = off)")
	k := fs.Int("k", 3, "number of refined queries")
	strategy := fs.String("strategy", "partition", "partition | sle | stack")
	parallel := fs.Int("parallel", 0, "partition-walk workers (0 = all cores, 1 = sequential)")
	explainTrace := fs.Bool("explain", false, "print the query's stage trace (spans with durations) after the answer")
	wireAddr := fs.String("wire", "", "query a running xserve -wire server at this address and print the raw JSON payload")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("search needs a query"))
	}
	query := strings.Join(fs.Args(), " ")
	if *wireAddr != "" {
		wireSearch(*wireAddr, query, parseStrategy(*strategy), *k, *parallel)
		return
	}
	eng, doc, closeFn := loadBackend(fs)
	defer closeFn()
	answer(os.Stdout, eng, doc, query, parseStrategy(*strategy), *k, *explainTrace)
}

// wireSearch answers one query over the binary protocol and prints the
// payload, which is byte-identical to the HTTP /search body for the same
// server state — scripts/wire_diff.sh diffs the two surfaces through
// this path.
func wireSearch(addr, query string, strategy xrefine.Strategy, k, parallel int) {
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	terms := xrefine.Tokenize(query)
	if len(terms) == 0 {
		fatal(fmt.Errorf("empty query after tokenization"))
	}
	resp, err := c.Query(0, byte(strategy), k, parallel, terms)
	if err != nil {
		fatal(err)
	}
	switch resp.Status {
	case wire.StatusOK:
		os.Stdout.Write(resp.Payload)
	case wire.StatusRetry:
		fatal(fmt.Errorf("server at capacity, retry after %ds: %s", resp.RetryAfter, resp.Payload))
	default:
		fatal(fmt.Errorf("wire error %d: %s", resp.Code, resp.Payload))
	}
}

func cmdBatch(args []string) {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	fs.String("xml", "", "XML document")
	fs.String("index", "", "index file")
	k := fs.Int("k", 3, "number of refined queries")
	strategy := fs.String("strategy", "partition", "partition | sle | stack")
	fs.Int("parallel", 0, "partition-walk workers (0 = all cores, 1 = sequential)")
	queriesPath := fs.String("queries", "", "file with one keyword query per line")
	fs.Parse(args)
	if *queriesPath == "" {
		fatal(fmt.Errorf("batch needs -queries"))
	}
	eng, _, closeFn := load(fs)
	defer closeFn()
	qf, err := os.Open(*queriesPath)
	if err != nil {
		fatal(err)
	}
	defer qf.Close()
	if err := runBatch(os.Stdout, eng, qf, parseStrategy(*strategy), *k); err != nil {
		fatal(err)
	}
}

// runBatch answers one query per input line, emitting TSV:
// query, need_refine, best keywords, dSim, result count.
func runBatch(w io.Writer, eng *xrefine.Engine, queries io.Reader, strategy xrefine.Strategy, k int) error {
	sc := bufio.NewScanner(queries)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" || strings.HasPrefix(q, "#") {
			continue
		}
		terms := tokenizeArg(q)
		if len(terms) == 0 {
			fmt.Fprintf(w, "%s\terror\tempty query\t\t\n", q)
			continue
		}
		resp, err := eng.QueryTerms(terms, strategy, k)
		if err != nil {
			fmt.Fprintf(w, "%s\terror\t%s\t\t\n", q, err)
			continue
		}
		if len(resp.Queries) == 0 {
			fmt.Fprintf(w, "%s\t%v\t\t\t0\n", q, resp.NeedRefine)
			continue
		}
		best := resp.Queries[0]
		fmt.Fprintf(w, "%s\t%v\t%s\t%.1f\t%d\n",
			q, resp.NeedRefine, strings.Join(best.Keywords, " "), best.DSim, len(best.Results))
	}
	return sc.Err()
}

func cmdApply(args []string) {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (built with index -with-doc)")
	walPath := fs.String("wal", "", "write-ahead log file (default <index>.wal)")
	batchPath := fs.String("batch", "", "update batch file, one op per line (see xgen -updates)")
	fs.Parse(args)
	if *indexPath == "" || *batchPath == "" {
		fatal(fmt.Errorf("apply needs -index and -batch"))
	}
	if *walPath == "" {
		*walPath = *indexPath + ".wal"
	}
	if err := applyBatch(os.Stdout, *indexPath, *walPath, *batchPath); err != nil {
		fatal(err)
	}
}

// applyBatch commits one batch file against a live index as a new epoch.
func applyBatch(w io.Writer, indexPath, walPath, batchPath string) error {
	bf, err := os.Open(batchPath)
	if err != nil {
		return err
	}
	batch, err := xrefine.ReadUpdateBatch(bf)
	bf.Close()
	if err != nil {
		return err
	}
	store, err := xrefine.OpenStore(indexPath, false)
	if err != nil {
		return err
	}
	defer store.Close()
	eng, err := xrefine.OpenLiveIndex(store, walPath, nil)
	if err != nil {
		return err
	}
	defer eng.Close()
	if st := eng.UpdateStats(); st.ReplayedBatches > 0 {
		fmt.Fprintf(w, "recovered %d batch(es) from the write-ahead log (epoch %d)\n",
			st.ReplayedBatches, st.Epoch)
	}
	res, err := eng.Apply(batch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "epoch %d: %d insert op(s), %d delete op(s); %d node(s) added, %d removed (%d WAL bytes)\n",
		res.Epoch, res.InsertOps, res.DeleteOps, res.Inserted, res.Deleted, res.WALBytes)
	return nil
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	fs.String("xml", "", "XML document")
	fs.String("index", "", "index file")
	k := fs.Int("k", 4, "number of refined queries")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("explain needs a query"))
	}
	eng, _, closeFn := load(fs)
	defer closeFn()
	if err := explain(os.Stdout, eng, strings.Join(fs.Args(), " "), *k); err != nil {
		fatal(err)
	}
}

// explain prints the full decision trace: normalized terms, generated
// rules, search-for candidates with confidences, and the ranked refined
// queries with provenance and scores.
func explain(w io.Writer, eng *xrefine.Engine, query string, k int) error {
	terms := tokenizeArg(query)
	resp, err := eng.QueryTerms(terms, xrefine.StrategyPartition, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query terms: %v\n", resp.Terms)
	fmt.Fprintf(w, "needs refinement: %v\n", resp.NeedRefine)
	fmt.Fprintf(w, "\nrules derived for this query (%d):\n", len(resp.Rules))
	for _, r := range resp.Rules {
		fmt.Fprintf(w, "  [%s] %s\n", r.Origin, r)
	}
	fmt.Fprintf(w, "\nsearch-for candidates (Formula 1):\n")
	for _, c := range resp.SearchFor {
		fmt.Fprintf(w, "  %-40s confidence %.4f\n", c.Type.Path(), c.Confidence)
	}
	fmt.Fprintf(w, "\nranked queries:\n")
	for i, rq := range resp.Queries {
		label := "refined"
		if rq.IsOriginal {
			label = "original"
		}
		fmt.Fprintf(w, "  %d. [%s] {%s}  dSim=%.1f rank=%.4f (sim %.4f + dep %.4f) results=%d\n",
			i+1, label, strings.Join(rq.Keywords, ", "), rq.DSim, rq.Score, rq.SimScore, rq.DepScore, len(rq.Results))
		for _, st := range rq.Steps {
			fmt.Fprintf(w, "       via %s\n", st)
		}
	}
	return nil
}

func cmdNarrow(args []string) {
	fs := flag.NewFlagSet("narrow", flag.ExitOnError)
	fs.String("xml", "", "XML document")
	fs.String("index", "", "index file (must carry the document; see index -with-doc)")
	max := fs.Int("max", 50, "result count above which a query is too broad")
	k := fs.Int("k", 3, "number of suggestions")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("narrow needs a query"))
	}
	eng, _, closeFn := load(fs)
	defer closeFn()
	if err := narrowQuery(os.Stdout, eng, strings.Join(fs.Args(), " "), *max, *k); err != nil {
		fatal(err)
	}
}

func narrowQuery(w io.Writer, eng *xrefine.Engine, query string, max, k int) error {
	out, err := eng.Narrow(query, &xrefine.NarrowOptions{MaxResults: max, TopK: k})
	if err != nil {
		return err
	}
	if !out.TooBroad {
		fmt.Fprintf(w, "%d result(s) — specific enough (threshold %d)\n", out.OriginalResults, max)
		return nil
	}
	fmt.Fprintf(w, "%d results — too broad; try instead:\n", out.OriginalResults)
	if len(out.Suggestions) == 0 {
		fmt.Fprintln(w, "  (no narrowing suggestion found)")
		return nil
	}
	for i, s := range out.Suggestions {
		fmt.Fprintf(w, "%d. {%s}  (%d results, +%s)\n",
			i+1, strings.Join(s.Keywords, " "), len(s.Results), strings.Join(s.Added, "+"))
	}
	return nil
}

func cmdREPL(args []string) {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	fs.String("xml", "", "XML document")
	fs.String("index", "", "index file")
	fs.String("shards", "", "shard directory (xgen -shards) to query scatter-gather")
	fs.Int("replicas", 0, "replicas per shard to attach from the manifest (0 = all)")
	fs.Duration("hedge-after", 0, "hedge a slow shard scan onto the next replica after this delay (0 = off)")
	k := fs.Int("k", 3, "number of refined queries")
	strategy := fs.String("strategy", "partition", "partition | sle | stack")
	fs.Int("parallel", 0, "partition-walk workers (0 = all cores, 1 = sequential)")
	fs.Parse(args)
	eng, doc, closeFn := loadBackend(fs)
	defer closeFn()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("xrefine> ")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" || q == "quit" || q == "exit" {
			break
		}
		answer(os.Stdout, eng, doc, q, parseStrategy(*strategy), *k, false)
		fmt.Print("xrefine> ")
	}
}

func answer(w io.Writer, eng queryBackend, doc *xrefine.Document, query string, strategy xrefine.Strategy, k int, explainTrace bool) {
	ctx := context.Background()
	var root *xrefine.Span
	if explainTrace {
		ctx, root = xrefine.NewTrace(ctx, "query")
	}
	tsp := root.StartChild("tokenize")
	terms := tokenizeArg(query)
	tsp.End()
	resp, err := eng.QueryTermsCtx(ctx, terms, strategy, k, 0)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if root != nil {
		defer func() {
			root.End()
			fmt.Fprintln(w, "\ntrace:")
			xrefine.WriteTrace(w, root.Data())
			root.Release()
		}()
	}
	if len(resp.SearchFor) > 0 {
		var names []string
		for _, c := range resp.SearchFor {
			names = append(names, c.Type.Tag)
		}
		fmt.Fprintf(w, "search-for: %s\n", strings.Join(names, ", "))
	}
	if !resp.NeedRefine {
		fmt.Fprintf(w, "query %v matches directly (%d results)\n", resp.Terms, len(resp.Queries[0].Results))
		printResults(w, eng, doc, resp.Queries[0].Results)
		return
	}
	fmt.Fprintf(w, "query %v has no meaningful result; refinements:\n", resp.Terms)
	if len(resp.Queries) == 0 {
		fmt.Fprintln(w, "  (none found)")
		return
	}
	for i, rq := range resp.Queries {
		fmt.Fprintf(w, "%d. {%s}  dSim=%.1f rank=%.3f  (%d results)\n",
			i+1, strings.Join(rq.Keywords, ", "), rq.DSim, rq.Score, len(rq.Results))
		for _, st := range rq.Steps {
			fmt.Fprintf(w, "     via: %s\n", st)
		}
		printResults(w, eng, doc, rq.Results)
	}
}

func printResults(w io.Writer, eng queryBackend, doc *xrefine.Document, results []xrefine.Match) {
	const maxShow = 5
	for i, m := range results {
		if i == maxShow {
			fmt.Fprintf(w, "     ... %d more\n", len(results)-maxShow)
			break
		}
		// The backend renders against its own stored document (a shard
		// router asks the owning shard); engines without one fall back to
		// the bare label via the package helper.
		if s, ok := eng.Snippet(m, 80); ok {
			fmt.Fprintf(w, "     %s\n", s)
		} else {
			fmt.Fprintf(w, "     %s\n", xrefine.Snippet(doc, m, 80))
		}
	}
}

// tokenizeArg normalizes the shell-provided query string with the same
// tokenizer the engine uses.
func tokenizeArg(q string) []string { return xrefine.Tokenize(q) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xrefine:", err)
	os.Exit(1)
}

// cmdSLO fetches a running server's /healthz and renders the SLO burn-rate
// report under its "slo" key.
func cmdSLO(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of a running xserve")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	fs.Parse(args)
	if err := sloReport(os.Stdout, *url, *timeout); err != nil {
		fatal(err)
	}
}

func sloReport(w io.Writer, base string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: %s", resp.Status)
	}
	var body struct {
		SLO *obs.SLOReport `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decode /healthz: %w", err)
	}
	if body.SLO == nil {
		return fmt.Errorf("server reports no SLO data (older build?)")
	}
	obs.WriteSLOReport(w, *body.SLO)
	return nil
}
